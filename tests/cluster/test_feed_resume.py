"""Tests for durable cursors and the crash-resumable feed consumer."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FeedFaultPlan, FeedFaults
from repro.cluster.feeds import (
    ChangestreamFeed,
    FeedCursorStore,
    FeedOperation,
    FeedRecord,
    ReplayableStreamFeed,
    ResumableFeedConsumer,
)
from repro.errors import FeedDisconnectedError, FeedError
from repro.lsm.storage import SimulatedDisk
from repro.util.retry import RetryPolicy


class DictTarget:
    """Minimal ingest target: a dict of rows, exact and comparable."""

    def __init__(self):
        self.rows = {}
        self.flushes = 0

    def insert(self, document):
        self.rows[document["id"]] = dict(document)

    def update(self, document):
        if document["id"] not in self.rows:
            return False
        self.rows[document["id"]] = dict(document)
        return True

    def delete(self, pk):
        return self.rows.pop(pk, None) is not None

    def flush(self):
        self.flushes += 1


def _inserts(count, base=0):
    return [
        FeedRecord(FeedOperation.INSERT, {"id": base + i, "value": i * 7})
        for i in range(count)
    ]


def _consumer(source, target, store, checkpoint_every=8, **kwargs):
    kwargs.setdefault("retry_policy", RetryPolicy.immediate(max_attempts=3))
    return ResumableFeedConsumer(
        source, target, store, checkpoint_every=checkpoint_every, **kwargs
    )


class TestFeedCursorStore:
    def test_defaults_to_zero(self):
        store = FeedCursorStore(SimulatedDisk())
        assert store.cursor("f") == 0
        assert store.applied("f") == 0

    def test_roundtrip_and_isolation(self):
        store = FeedCursorStore(SimulatedDisk())
        store.checkpoint("a", 17)
        store.mark_applied("a", 23)
        store.checkpoint("b", 5)
        assert (store.cursor("a"), store.applied("a")) == (17, 23)
        assert (store.cursor("b"), store.applied("b")) == (5, 0)

    def test_cursor_lives_in_the_superblock(self):
        disk = SimulatedDisk()
        FeedCursorStore(disk).checkpoint("f", 9)
        assert disk.superblock_get("feed.f.cursor") == 9


class TestCheckpointCadence:
    def test_checkpoints_every_n_applied_plus_final(self):
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        stats = _consumer(
            ChangestreamFeed("f", _inserts(10)), target, store, checkpoint_every=4
        ).run()
        # at 4, at 8, and the final checkpoint on clean exit
        assert stats.checkpoints == 3
        assert store.cursor("f") == 10
        assert store.applied("f") == 10
        assert stats.applied == 10
        assert target.flushes == 1  # the clean-exit flush

    def test_flush_every_fires_at_log_positions(self):
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        _consumer(
            ChangestreamFeed("f", _inserts(10)),
            target,
            store,
            flush_every=3,
        ).run()
        # positions 3, 6, 9 plus the clean-exit flush
        assert target.flushes == 4

    def test_validation(self):
        store = FeedCursorStore(SimulatedDisk())
        with pytest.raises(FeedError):
            _consumer(ChangestreamFeed("f"), DictTarget(), store, checkpoint_every=0)
        with pytest.raises(FeedError):
            _consumer(ChangestreamFeed("f"), DictTarget(), store, flush_every=0)


class TestCrashResume:
    def test_crash_skips_final_checkpoint_then_resume_replays_gap(self):
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        records = _inserts(20)
        crashed = _consumer(
            ChangestreamFeed("f", records), target, store
        ).run(stop_after=13)
        assert crashed.applied == 13
        assert store.cursor("f") == 8  # last cadence checkpoint, not 13
        assert store.applied("f") == 13  # per-apply high-water mark
        resumed = _consumer(ChangestreamFeed("f", records), target, store).run()
        assert resumed.replayed == 5  # seqnos 9..13: re-read, not re-applied
        assert resumed.applied == 7  # seqnos 14..20
        assert crashed.applied + resumed.applied == 20
        assert sorted(target.rows) == list(range(20))

    def test_resume_after_completion_is_a_noop(self):
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        records = _inserts(12)
        _consumer(ChangestreamFeed("f", records), target, store).run()
        again = _consumer(ChangestreamFeed("f", records), target, store).run()
        assert again.applied == 0
        assert again.replayed == 0  # cursor is at the tail already
        assert sorted(target.rows) == list(range(12))

    def test_replayed_deletes_are_not_reapplied(self):
        # A replayed DELETE against an already-deleted row must be
        # skipped by the applied floor, not counted as a failure.
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        records = _inserts(10) + [
            FeedRecord(FeedOperation.DELETE, {"id": 3}),
            FeedRecord(FeedOperation.UPDATE, {"id": 4, "value": 99}),
        ]
        _consumer(
            ChangestreamFeed("f", records), target, store, checkpoint_every=5
        ).run(stop_after=12)
        resumed = _consumer(ChangestreamFeed("f", records), target, store).run()
        assert resumed.replayed == 2  # seqnos 11..12
        assert resumed.failed == 0
        assert 3 not in target.rows
        assert target.rows[4]["value"] == 99


class TestFeedFaults:
    def test_duplicate_deliveries_are_deduplicated(self):
        plan = FeedFaultPlan(seed=1, faults=FeedFaults(duplicate=1.0))
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        source = ChangestreamFeed("f", _inserts(15), fault_plan=plan)
        stats = _consumer(source, target, store).run()
        assert source.duplicates_delivered == 15
        assert stats.applied == 15
        assert stats.deduplicated == 15
        assert sorted(target.rows) == list(range(15))

    def test_disconnect_after_every_record_still_completes(self):
        plan = FeedFaultPlan(seed=2, faults=FeedFaults(disconnect=1.0))
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        source = ChangestreamFeed("f", _inserts(10), fault_plan=plan, batch_size=4)
        stats = _consumer(source, target, store).run()
        # every delivery is followed by a cut; progress resets the
        # attempt budget, so the run completes anyway
        assert stats.disconnects == 10
        assert stats.reconnects == 10
        assert stats.applied == 10
        assert source.partial_batches > 0
        assert sorted(target.rows) == list(range(10))

    def test_reconnect_budget_exhaustion_raises_typed_error(self):
        class DeadSource:
            feed_id = "dead"
            head_seqno = 0
            closed = False

            def read(self, after=0):
                raise FeedDisconnectedError("transport down")

            def reconnect(self):
                pass

        stats_store = FeedCursorStore(SimulatedDisk())
        consumer = _consumer(
            DeadSource(),
            DictTarget(),
            stats_store,
            retry_policy=RetryPolicy.immediate(max_attempts=3),
        )
        with pytest.raises(FeedError, match="reconnect budget exhausted"):
            consumer.run()

    def test_seeded_plans_are_reproducible_and_namespaced(self):
        decisions = [
            [FeedFaultPlan(seed=5, faults=FeedFaults(0.3, 0.3)).decide()
             for _ in range(20)]
            for _ in range(2)
        ]
        assert decisions[0] == decisions[1]


class TestBackfillThenTail:
    def test_tail_applies_live_appends_until_close(self):
        store = FeedCursorStore(SimulatedDisk())
        target = DictTarget()
        source = ReplayableStreamFeed(
            "live", ({"id": i, "value": i} for i in range(10))
        )
        consumer = _consumer(source, target, store, checkpoint_every=4)
        done: list = []

        def run():
            done.append(consumer.run(tail=True))

        thread = threading.Thread(target=run)
        thread.start()
        for i in range(10, 20):
            source.append({"id": i, "value": i})
        source.close()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "tail consumer failed to stop on close"
        stats = done[0]
        assert stats.applied == 20
        assert stats.backfilled == 10  # at or below head at start
        assert stats.tailed == 10  # appended while tailing
        assert sorted(target.rows) == list(range(20))

    def test_closed_feed_rejects_appends(self):
        source = ReplayableStreamFeed("done")
        source.close()
        with pytest.raises(FeedError):
            source.append({"id": 1})


def _ops(seed, count):
    """A deterministic mixed op stream keyed off a small seed."""
    records = []
    live = []
    for i in range(count):
        roll = (seed + i * 2654435761) % 100
        if roll < 70 or not live:
            live.append(i)
            records.append(
                FeedRecord(FeedOperation.INSERT, {"id": i, "value": roll})
            )
        elif roll < 85:
            records.append(
                FeedRecord(
                    FeedOperation.UPDATE, {"id": live[roll % len(live)], "value": i}
                )
            )
        else:
            records.append(
                FeedRecord(
                    FeedOperation.DELETE, {"id": live.pop(roll % len(live))}
                )
            )
    return records


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    count=st.integers(1, 60),
    first_kill=st.integers(0, 60),
    second_kill=st.integers(1, 60),
)
def test_resume_from_any_prefix_converges_bit_identical(
    seed, count, first_kill, second_kill
):
    """Crash twice at arbitrary points; the resumed run must converge
    to the exact rows of an uninterrupted run."""
    records = _ops(seed, count)
    oracle = DictTarget()
    _consumer(
        ChangestreamFeed("f", records), oracle, FeedCursorStore(SimulatedDisk())
    ).run()

    target = DictTarget()
    store = FeedCursorStore(SimulatedDisk())
    _consumer(ChangestreamFeed("f", records), target, store, checkpoint_every=7).run(
        stop_after=min(first_kill, count)
    )
    _consumer(ChangestreamFeed("f", records), target, store, checkpoint_every=7).run(
        stop_after=second_kill
    )
    final = _consumer(
        ChangestreamFeed("f", records), target, store, checkpoint_every=7
    ).run()
    assert target.rows == oracle.rows
    assert final.deduplicated == 0  # replay floor absorbed every re-read
