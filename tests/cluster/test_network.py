"""Tests for the simulated network."""

import pytest

from repro.cluster.network import Network
from repro.errors import ClusterError


def test_register_and_send():
    network = Network()
    received = []
    network.register("master", lambda src, msg: received.append((src, msg)))
    size = network.send("node1", "master", {"kind": "hello"})
    assert received == [("node1", {"kind": "hello"})]
    assert size > 0
    assert network.stats.messages == 1
    assert network.stats.bytes_sent == size
    assert network.stats.per_destination["master"] == size


def test_duplicate_registration_rejected():
    network = Network()
    network.register("a", lambda s, m: None)
    with pytest.raises(ClusterError):
        network.register("a", lambda s, m: None)


def test_unknown_destination():
    network = Network()
    with pytest.raises(ClusterError):
        network.send("a", "ghost", {})


def test_byte_accounting_grows_with_payload():
    network = Network()
    network.register("m", lambda s, msg: None)
    small = network.send("a", "m", {"x": 1})
    large = network.send("a", "m", {"x": list(range(100))})
    assert large > small


def test_node_ids():
    network = Network()
    network.register("b", lambda s, m: None)
    network.register("a", lambda s, m: None)
    assert network.node_ids == ["a", "b"]
