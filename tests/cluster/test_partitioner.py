"""Tests for hash partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.partitioner import HashPartitioner
from repro.errors import ClusterError


def test_validates_partition_count():
    with pytest.raises(ClusterError):
        HashPartitioner(0)


def test_deterministic():
    p = HashPartitioner(8)
    assert p.partition_of(42) == p.partition_of(42)
    assert p.partition_of("abc") == p.partition_of("abc")


def test_single_partition():
    p = HashPartitioner(1)
    assert all(p.partition_of(k) == 0 for k in range(100))


def test_reasonable_balance():
    p = HashPartitioner(8)
    counts = [0] * 8
    for key in range(8000):
        counts[p.partition_of(key)] += 1
    assert min(counts) > 500  # no partition starves
    assert max(counts) < 1500


@given(st.integers(-(2**62), 2**62), st.integers(1, 64))
def test_in_range(key, n):
    assert 0 <= HashPartitioner(n).partition_of(key) < n


@given(st.text(max_size=30), st.integers(1, 16))
def test_string_keys_in_range(key, n):
    assert 0 <= HashPartitioner(n).partition_of(key) < n
