"""Tests for the bounded concurrent estimate service.

``faulthandler`` arms a watchdog per test so a deadlock in the
admission queue or worker pool produces thread tracebacks instead of a
silent CI hang (same discipline as the scheduler stress suite).
"""

import faulthandler
import threading

import pytest

from repro.cluster import LSMCluster
from repro.cluster.serving import EstimateService
from repro.core import StatisticsConfig
from repro.errors import OverloadedError
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.synopses import SynopsisType
from repro.types import Domain
from repro.util.retry import RetryPolicy

STRESS_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def watchdog():
    """Dump all-thread tracebacks if a serving test wedges."""
    faulthandler.dump_traceback_later(STRESS_TIMEOUT, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def _cluster(scheduler="sync"):
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32),
        retry_policy=RetryPolicy.immediate(max_attempts=3),
        scheduler=scheduler,
    )
    cluster.create_dataset(
        "ds",
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=32,
        merge_policy_factory=lambda: ConstantMergePolicy(max_components=3),
    )
    for pk in range(200):
        cluster.insert("ds", {"id": pk, "value": (pk * 13) % 1024})
    cluster.flush_all("ds")
    cluster.drain_maintenance()
    cluster.recover_statistics()
    return cluster


@pytest.fixture
def cluster():
    built = _cluster()
    yield built
    built.shutdown()


class TestAdmission:
    def test_answers_match_direct_estimates(self, cluster):
        with EstimateService(cluster, workers=2) as service:
            for lo in (0, 128, 512):
                served = service.estimate("c1", "ds", "value_idx", lo, lo + 255)
                direct = cluster.estimate_detailed("ds", "value_idx", lo, lo + 255)
                assert served.estimate == direct.estimate
                assert not served.degraded

    def test_queue_bound_sheds_with_typed_error(self, cluster):
        # No workers started: offers past the bound are deterministic
        # rejections, never queue growth.
        service = EstimateService(
            cluster,
            max_queue_depth=4,
            autostart=False,
            retry_policy=RetryPolicy.immediate(max_attempts=1),
        )
        admitted = sum(
            service.offer("c1", "ds", "value_idx", 0, 100) for _ in range(9)
        )
        assert admitted == 4
        assert service.queue_depth == 4
        assert service.peak_queue_depth == 4
        with pytest.raises(OverloadedError):
            service.estimate("c1", "ds", "value_idx", 0, 100, timeout=0.01)
        service.shutdown()

    def test_validation(self, cluster):
        with pytest.raises(OverloadedError):
            EstimateService(cluster, max_queue_depth=0)
        with pytest.raises(OverloadedError):
            EstimateService(cluster, workers=0)

    def test_timeout_is_typed_and_counted(self, cluster):
        service = EstimateService(cluster, autostart=False, default_timeout=0.01)
        with pytest.raises(OverloadedError, match="no answer"):
            service.estimate("c1", "ds", "value_idx", 0, 100)
        service.shutdown()

    def test_shutdown_fails_pending_requests(self, cluster):
        service = EstimateService(cluster, autostart=False)
        assert service.offer("c1", "ds", "value_idx", 0, 100)
        service.shutdown()
        assert service.queue_depth == 0
        with pytest.raises(OverloadedError):
            service.estimate("c1", "ds", "value_idx", 0, 100, timeout=0.01)


class TestFairScheduling:
    def test_round_robin_interleaves_clients(self, cluster):
        service = EstimateService(cluster, max_queue_depth=64, autostart=False)
        # Client "hog" floods first; "meek" adds one request after.
        for i in range(6):
            assert service.offer("hog", "ds", "value_idx", 0, 100 + i)
        assert service.offer("meek", "ds", "value_idx", 0, 50)
        order = []
        with service._cond:
            while True:
                request = service._next_request()
                if request is None:
                    break
                order.append(request.client_id)
        # The meek client is served second, not eighth.
        assert order[1] == "meek"
        assert order.count("hog") == 6
        service.shutdown()


class TestDegradedMode:
    def test_degraded_answer_comes_from_cache_and_is_flagged(self, cluster):
        # Warm the merged-synopsis cache, then time out instantly with
        # no workers: the only possible answer is the degraded one.
        warm = cluster.estimate_detailed("ds", "value_idx", 0, 1023)
        service = EstimateService(
            cluster, autostart=False, default_timeout=0.0, degraded_mode=True
        )
        result = service.estimate("c1", "ds", "value_idx", 0, 1023)
        assert result.degraded
        assert result.estimate == pytest.approx(warm.estimate)
        service.shutdown()

    def test_without_degraded_mode_the_same_request_sheds(self, cluster):
        cluster.estimate_detailed("ds", "value_idx", 0, 1023)
        service = EstimateService(
            cluster, autostart=False, default_timeout=0.0, degraded_mode=False
        )
        with pytest.raises(OverloadedError):
            service.estimate("c1", "ds", "value_idx", 0, 1023)
        service.shutdown()

    def test_cold_cache_sheds_even_in_degraded_mode(self, cluster):
        service = EstimateService(
            cluster, autostart=False, default_timeout=0.0, degraded_mode=True
        )
        # No estimate has ever touched this range's index cache entry
        # on a fresh service... the cache is per-index, so force a
        # truly cold cache by asking for an index never estimated.
        cluster.master.cache.clear()
        with pytest.raises(OverloadedError):
            service.estimate("c1", "ds", "value_idx", 0, 1023)
        service.shutdown()


class TestMixedLoadStress:
    def test_writers_and_clients_no_deadlock_no_lost_requests(self):
        cluster = _cluster(scheduler="threads")
        try:
            service = EstimateService(
                cluster,
                max_queue_depth=16,
                workers=2,
                default_timeout=30.0,
                retry_policy=RetryPolicy.immediate(max_attempts=3),
            )
            outcomes = {"answered": 0, "shed": 0}
            outcomes_lock = threading.Lock()

            def writer(base):
                for i in range(300):
                    cluster.insert(
                        "ds", {"id": 10_000 + base + i, "value": (base + i) % 1024}
                    )

            def client(name):
                for i in range(40):
                    lo = (i * 131) % 700
                    try:
                        result = service.estimate(
                            name, "ds", "value_idx", lo, lo + 255
                        )
                        assert result.estimate >= 0.0
                        with outcomes_lock:
                            outcomes["answered"] += 1
                    except OverloadedError:
                        with outcomes_lock:
                            outcomes["shed"] += 1

            threads = [
                threading.Thread(target=writer, args=(base,))
                for base in (0, 1000)
            ] + [
                threading.Thread(target=client, args=(f"c{n}",))
                for n in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=STRESS_TIMEOUT)
            assert not any(thread.is_alive() for thread in threads), (
                "mixed-load threads failed to finish: deadlock"
            )
            assert outcomes["answered"] + outcomes["shed"] == 3 * 40
            assert outcomes["answered"] > 0
            assert service.peak_queue_depth <= 16
            service.shutdown()
            cluster.drain_maintenance()
        finally:
            cluster.shutdown()
