"""NDV sketch lane lifecycle under the cluster's failure modes.

The lane's promise (docs/SKETCHES.md): register unions are exact and
HBS encoding is a pure function of the registers, so at-least-once
delivery, straggler redeliveries and crash-recovery re-derivation must
all leave the master's unioned sketch *bit-identical* to the one a
perfect wire would have produced.
"""

from repro.cluster.cluster import LSMCluster
from repro.cluster.faults import FaultPlan, LinkFaults
from repro.cluster.node import RetryPolicy
from repro.core.config import StatisticsConfig
from repro.lsm.dataset import IndexSpec, secondary_index_name
from repro.synopses.base import SynopsisType
from repro.synopses.hll import ndv_statistics_key
from repro.types import Domain

PK_DOMAIN = Domain(0, 2**20 - 1)
VALUE_DOMAIN = Domain(0, 1023)


def _build_cluster(fault_plan=None, durable=False):
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(
            SynopsisType.EQUI_WIDTH,
            budget=32,
            ndv_enabled=True,
            ndv_precision=7,
        ),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy.immediate(max_attempts=4),
        durable=durable,
    )
    cluster.create_dataset(
        "ds",
        primary_key="id",
        primary_domain=PK_DOMAIN,
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        memtable_capacity=32,
    )
    return cluster


def _ingest(cluster, records=400):
    for pk in range(records):
        cluster.insert("ds", {"id": pk * 17 % 2**20, "value": pk % 1024})
    for pk in range(0, records, 10):
        cluster.delete("ds", pk * 17 % 2**20)
    cluster.flush_all("ds")
    cluster.recover_statistics()


def _unioned_payloads(cluster, index_name="primary"):
    """The master catalog's NDV entries as canonical sketch bytes.

    Component uids are allocated from a process-global counter, so two
    cluster instances (or two node incarnations) number components
    differently; the identity that must survive faults is the multiset
    of per-partition HBS payload pairs."""
    key = ndv_statistics_key(secondary_index_name("ds", index_name))
    entries = cluster.master.catalog.entries_for(key)
    return sorted(
        (
            entry.node_id,
            entry.partition_id,
            entry.synopsis.to_payload()["hbs"],
            entry.anti_synopsis.to_payload()["hbs"],
        )
        for entry in entries
    )


def test_ndv_end_to_end_through_cluster_ingest():
    cluster = _build_cluster()
    _ingest(cluster)
    detail = cluster.estimate_ndv_detailed("ds")
    true_ndv = cluster.count_records("ds")
    # p=7 -> sigma ~ 9.2%; the interval must bracket sanity.
    assert detail.lower <= detail.upper
    assert detail.upper == detail.matter_ndv
    assert abs(detail.matter_ndv - 400) / 400 <= 3 * 1.04 / 128**0.5
    assert true_ndv <= 400
    # Secondary lane answers too.
    assert cluster.estimate_ndv("ds", "value_idx") > 0


def test_cached_union_matches_slow_path_and_survives_redundant_queries():
    cluster = _build_cluster()
    _ingest(cluster)
    slow = cluster.estimate_ndv_detailed("ds")
    assert not slow.from_cache
    for _ in range(3):
        cached = cluster.estimate_ndv_detailed("ds")
        assert cached.from_cache
        assert cached.ndv == slow.ndv
        assert (cached.lower, cached.upper) == (slow.lower, slow.upper)


def test_faulty_wire_converges_to_clean_wire_bit_identically():
    """Duplicates, reordering and drops (with retry + recovery rounds)
    must leave the catalog -- and therefore the lazily unioned sketch --
    exactly as a perfect wire would have."""
    clean = _build_cluster()
    _ingest(clean)
    faulty = _build_cluster(
        fault_plan=FaultPlan(
            seed=5,
            default=LinkFaults(drop=0.2, duplicate=0.3, reorder=0.2),
        )
    )
    _ingest(faulty)
    for index_name in ("primary", "value_idx"):
        assert _unioned_payloads(faulty, index_name) == _unioned_payloads(
            clean, index_name
        )
        faulty_detail = faulty.estimate_ndv_detailed("ds", index_name)
        clean_detail = clean.estimate_ndv_detailed("ds", index_name)
        assert faulty_detail.ndv == clean_detail.ndv
        assert faulty_detail.upper == clean_detail.upper


def test_duplicate_deliveries_leave_unioned_sketch_unchanged():
    cluster = _build_cluster(
        fault_plan=FaultPlan(seed=3, default=LinkFaults(duplicate=0.5))
    )
    _ingest(cluster)
    before = cluster.estimate_ndv_detailed("ds")
    payloads = _unioned_payloads(cluster)
    # Re-deliver everything again: flush outboxes + drain the wire.
    cluster.recover_statistics()
    assert _unioned_payloads(cluster) == payloads
    after = cluster.estimate_ndv_detailed("ds")
    assert (after.ndv, after.lower, after.upper) == (
        before.ndv,
        before.lower,
        before.upper,
    )


def test_crash_recovery_rederives_identical_sketches():
    """A durable restart rebuilds every component's HLL pair from disk;
    hashing is deterministic, so the republished payloads -- and the
    resulting NDV interval -- are bit-identical to the pre-crash ones."""
    cluster = _build_cluster(durable=True)
    _ingest(cluster)
    before_payloads = {
        name: _unioned_payloads(cluster, name)
        for name in ("primary", "value_idx")
    }
    before = cluster.estimate_ndv_detailed("ds")
    cluster.restart_nodes()
    cluster.recover_statistics()
    after_payloads = {
        name: _unioned_payloads(cluster, name)
        for name in ("primary", "value_idx")
    }
    assert after_payloads == before_payloads
    after = cluster.estimate_ndv_detailed("ds")
    assert (after.ndv, after.lower, after.upper) == (
        before.ndv,
        before.lower,
        before.upper,
    )
