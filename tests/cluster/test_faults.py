"""Fault injection, the retrying sink, and master idempotency."""

import pytest

from repro.cluster.faultcheck import run_faultcheck
from repro.cluster.faults import FaultDecision, FaultPlan, LinkFaults
from repro.cluster.master import ClusterController
from repro.cluster.network import Network
from repro.cluster.node import NetworkStatisticsSink, RetryPolicy
from repro.errors import NetworkUnavailableError
from repro.obs.registry import MetricsRegistry
from repro.synopses import SynopsisType, create_builder
from repro.types import Domain

DOMAIN = Domain(0, 99)


def _synopsis(values=(1, 2)):
    builder = create_builder(SynopsisType.EQUI_WIDTH, DOMAIN, 8, len(values))
    for value in sorted(values):
        builder.add(value)
    return builder.build()


def _publish_message(uid=1, seq=None, partition=0, values=(1, 2)):
    message = {
        "kind": "stats.publish",
        "index": "idx",
        "partition": partition,
        "component_uid": uid,
        "synopsis": _synopsis(values).to_payload(),
        "anti_synopsis": _synopsis(()).to_payload(),
    }
    if seq is not None:
        message["seq"] = seq
    return message


def _retract_message(uids, seq=None, partition=0):
    message = {
        "kind": "stats.retract",
        "index": "idx",
        "partition": partition,
        "component_uids": list(uids),
    }
    if seq is not None:
        message["seq"] = seq
    return message


# -- FaultPlan policy ---------------------------------------------------------


def test_link_faults_validate_probabilities():
    with pytest.raises(ValueError):
        LinkFaults(drop=1.5)
    with pytest.raises(ValueError):
        LinkFaults(reorder=-0.1)


def test_fault_plan_validates_windows():
    with pytest.raises(ValueError):
        FaultPlan(unavailable={"m": [(5, 5)]})
    with pytest.raises(ValueError):
        FaultPlan(unavailable={"m": [(-1, 3)]})


def test_unavailability_window_is_half_open():
    plan = FaultPlan(unavailable={"m": [(2, 4)]})
    assert not plan.unavailable_at("m", 1)
    assert plan.unavailable_at("m", 2)
    assert plan.unavailable_at("m", 3)
    assert not plan.unavailable_at("m", 4)
    assert not plan.unavailable_at("other", 3)


def test_decide_drops_inside_window():
    plan = FaultPlan(unavailable={"m": [(0, 2)]})
    decision = plan.decide("a", "m", 1)
    assert decision.disposition is FaultDecision.DROP
    assert decision.reason == "unavailable"


def test_per_link_overrides_beat_default():
    plan = FaultPlan(
        default=LinkFaults(drop=1.0),
        links={("a", "m"): LinkFaults()},
    )
    assert plan.decide("a", "m", 0).disposition is FaultDecision.DELIVER
    assert plan.decide("b", "m", 0).disposition is FaultDecision.DROP


def test_same_seed_same_decisions():
    def decisions(seed):
        plan = FaultPlan(
            seed=seed,
            default=LinkFaults(drop=0.3, duplicate=0.3, reorder=0.3, delay=0.2),
        )
        return [
            (d.disposition, d.duplicate, d.release_tick, d.reason)
            for d in (plan.decide("a", "m", t) for t in range(50))
        ]

    assert decisions(7) == decisions(7)
    assert decisions(7) != decisions(8)


# -- Network fault execution --------------------------------------------------


def test_drop_raises_and_counts():
    registry = MetricsRegistry()
    network = Network(
        registry=registry, fault_plan=FaultPlan(default=LinkFaults(drop=1.0))
    )
    received = []
    network.register("m", lambda s, msg: received.append(msg))
    with pytest.raises(NetworkUnavailableError):
        network.send("a", "m", {"x": 1})
    assert received == []
    assert registry.counter("network.dropped").value == 1
    assert network.stats.messages == 0  # byte accounting charges deliveries only


def test_duplicate_delivers_twice():
    registry = MetricsRegistry()
    network = Network(
        registry=registry, fault_plan=FaultPlan(default=LinkFaults(duplicate=1.0))
    )
    received = []
    network.register("m", lambda s, msg: received.append(msg))
    network.send("a", "m", {"x": 1})
    assert received == [{"x": 1}, {"x": 1}]
    assert registry.counter("network.duplicated").value == 1
    assert network.stats.messages == 2


def test_reordering_swaps_past_later_traffic():
    registry = MetricsRegistry()
    plan = FaultPlan(links={("a", "m"): LinkFaults(reorder=1.0)})
    network = Network(registry=registry, fault_plan=plan)
    received = []
    network.register("m", lambda s, msg: received.append((s, msg["x"])))
    network.send("a", "m", {"x": "held"})  # held until tick >= 1
    network.send("b", "m", {"x": "fast"})  # clean link: delivered, then releases
    assert received == [("b", "fast"), ("a", "held")]
    assert registry.counter("network.reordered").value == 1
    assert network.pending_count == 0


def test_delay_parks_until_drain():
    registry = MetricsRegistry()
    plan = FaultPlan(
        links={("a", "m"): LinkFaults(delay=1.0)}, max_delay_ticks=100
    )
    network = Network(registry=registry, fault_plan=plan)
    received = []
    network.register("m", lambda s, msg: received.append(msg["x"]))
    network.send("a", "m", {"x": 1})
    assert received == []
    assert network.pending_count == 1
    assert registry.counter("network.delayed").value == 1
    assert network.drain() == 1
    assert received == [1]
    assert network.pending_count == 0


def test_sends_fail_during_unavailability_then_recover():
    network = Network(fault_plan=FaultPlan(unavailable={"m": [(0, 2)]}))
    received = []
    network.register("m", lambda s, msg: received.append(msg))
    for _ in range(2):  # ticks 0 and 1: inside the window
        with pytest.raises(NetworkUnavailableError):
            network.send("a", "m", {"x": 1})
    network.send("a", "m", {"x": 2})  # tick 2: window has passed
    assert received == [{"x": 2}]


# -- NetworkStatisticsSink retry/outbox ---------------------------------------


def _sink_fixture(plan, registry, max_attempts=4, outbox_limit=64):
    network = Network(registry=registry, fault_plan=plan)
    master = ClusterController(network, registry=registry)
    sink = NetworkStatisticsSink(
        network,
        "n1",
        "cc",
        0,
        registry=registry,
        retry_policy=RetryPolicy.immediate(max_attempts=max_attempts),
        outbox_limit=outbox_limit,
    )
    return network, master, sink


def test_sink_retries_through_outage_window():
    registry = MetricsRegistry()
    plan = FaultPlan(unavailable={"cc": [(0, 2)]})
    _network, master, sink = _sink_fixture(plan, registry)
    sink.publish("idx", 1, _synopsis(), _synopsis(()))
    assert sink.outbox_depth == 0
    assert master.catalog.entry_count("idx") == 1
    assert registry.counter("sink.retries").value == 2
    assert registry.counter("sink.send.failures").value == 0


def test_sink_parks_message_and_flushes_after_recovery():
    registry = MetricsRegistry()
    plan = FaultPlan(unavailable={"cc": [(0, 6)]})
    _network, master, sink = _sink_fixture(plan, registry, max_attempts=2)
    sink.publish("idx", 1, _synopsis(), _synopsis(()))  # ticks 0-1: parked
    assert sink.outbox_depth == 1
    assert master.catalog.entry_count("idx") == 0
    assert registry.counter("sink.send.failures").value == 1
    assert registry.gauge("sink.outbox.depth").value == 1
    assert sink.flush_outbox() == 1  # ticks 2-3: still inside the window
    assert sink.flush_outbox() == 1  # ticks 4-5
    assert sink.flush_outbox() == 0  # tick 6: delivered
    assert master.catalog.entry_count("idx") == 1
    assert registry.gauge("sink.outbox.depth").value == 0


def test_sink_outbox_sheds_oldest_on_overflow():
    registry = MetricsRegistry()
    plan = FaultPlan(unavailable={"cc": [(0, 10_000)]})
    _network, _master, sink = _sink_fixture(
        plan, registry, max_attempts=1, outbox_limit=2
    )
    for uid in (1, 2, 3):
        sink.publish("idx", uid, _synopsis(), _synopsis(()))
    assert sink.outbox_depth == 2
    assert registry.counter("sink.outbox.dropped").value == 1
    assert registry.gauge("sink.outbox.depth").value == 2


def test_sink_preserves_fifo_order_across_parking():
    registry = MetricsRegistry()
    plan = FaultPlan(unavailable={"cc": [(0, 4)]})
    network, _master, sink = _sink_fixture(plan, registry, max_attempts=1)
    order = []
    original = network._handlers["cc"]
    network._handlers["cc"] = lambda s, m: (
        order.append(m["component_uid"]),
        original(s, m),
    )
    sink.publish("idx", 1, _synopsis(), _synopsis(()))  # tick 0: parked
    sink.publish("idx", 2, _synopsis(), _synopsis(()))  # tick 1: parked behind 1
    assert sink.outbox_depth == 2
    while sink.flush_outbox():
        pass
    assert order == [1, 2]


def test_sink_sequences_are_unique_and_monotone():
    registry = MetricsRegistry()
    network = Network(registry=registry)
    seen = []
    network.register("cc", lambda s, m: seen.append(m["seq"]))
    sink = NetworkStatisticsSink(network, "n1", "cc", 0, registry=registry)
    sink.publish("idx", 1, _synopsis(), _synopsis(()))
    sink.retract("idx", [1])
    sink.publish("idx", 2, _synopsis(), _synopsis(()))
    assert seen == [1, 2, 3]


# -- master idempotency -------------------------------------------------------


def test_master_skips_duplicate_deliveries_by_seq():
    registry = MetricsRegistry()
    network = Network(registry=registry)
    master = ClusterController(network, registry=registry)
    message = _publish_message(uid=1, seq=1)
    network.send("n1", "cc", message)
    network.send("n1", "cc", message)  # transport-level redelivery
    assert master.catalog.entry_count("idx") == 1
    assert registry.counter("cluster.stats.duplicates").value == 1
    assert master.stats_messages_received == 2
    assert registry.counter("cluster.stats.messages").value == 2


def test_master_dedup_channels_are_per_node_and_partition():
    registry = MetricsRegistry()
    network = Network(registry=registry)
    master = ClusterController(network, registry=registry)
    network.send("n1", "cc", _publish_message(uid=1, seq=1, partition=0))
    network.send("n1", "cc", _publish_message(uid=2, seq=1, partition=1))
    network.send("n2", "cc", _publish_message(uid=3, seq=1, partition=0))
    assert master.catalog.entry_count("idx") == 3
    assert registry.counter("cluster.stats.duplicates").value == 0


def test_late_publish_cannot_resurrect_retracted_component():
    registry = MetricsRegistry()
    network = Network(registry=registry)
    master = ClusterController(network, registry=registry)
    network.send("n1", "cc", _publish_message(uid=1, seq=1))
    network.send("n1", "cc", _retract_message([1, 2], seq=2))
    # A delayed publish of the already-retracted component 2 arrives late.
    network.send("n1", "cc", _publish_message(uid=2, seq=3))
    assert master.catalog.entry_count("idx") == 0
    assert [e.component_uid for e in master.catalog.entries_for("idx")] == []


def test_duplicate_retract_does_not_bump_version():
    network = Network(registry=MetricsRegistry())
    master = ClusterController(network, registry=MetricsRegistry())
    network.send("n1", "cc", _publish_message(uid=1, seq=1))
    network.send("n1", "cc", _retract_message([1], seq=2))
    version = master.catalog.version_for("idx")
    network.send("n1", "cc", _retract_message([1]))  # unstamped redelivery
    assert master.catalog.version_for("idx") == version


def test_catalog_gauge_tracks_only_actual_change():
    registry = MetricsRegistry()
    network = Network(registry=registry)
    master = ClusterController(network, registry=registry)
    network.send("n1", "cc", _publish_message(uid=1, seq=1))
    assert registry.gauge("cluster.catalog.entries").value == 1
    # Identical payload under a fresh seq: passes dedup, no-ops in the
    # catalog, and must not disturb the gauge.
    network.send("n1", "cc", _publish_message(uid=1, seq=2))
    assert registry.gauge("cluster.catalog.entries").value == 1
    assert master.catalog.version_for("idx") == 1


# -- end-to-end chaos ---------------------------------------------------------


def test_seeded_chaos_run_converges():
    report = run_faultcheck(seed=11, records=256)
    assert report.converged, report.problems
    assert report.dropped > 0  # the plan actually injected faults
    assert report.retries > 0


def test_hopeless_fault_plan_raises_instead_of_spinning():
    from repro.cluster.cluster import LSMCluster
    from repro.core.config import StatisticsConfig
    from repro.errors import ClusterError
    from repro.lsm.merge_policy import ConstantMergePolicy

    cluster = LSMCluster(
        num_nodes=1,
        partitions_per_node=1,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=8),
        fault_plan=FaultPlan(default=LinkFaults(drop=1.0)),
        retry_policy=RetryPolicy.immediate(max_attempts=1),
    )
    cluster.create_dataset(
        "d",
        primary_key="id",
        primary_domain=Domain(0, 999),
        memtable_capacity=4,
        merge_policy_factory=lambda: ConstantMergePolicy(max_components=3),
    )
    for pk in range(8):
        cluster.insert("d", {"id": pk})
    cluster.flush_all("d")
    assert cluster.statistics_backlog() > 0
    with pytest.raises(ClusterError):
        cluster.recover_statistics(max_rounds=5)
