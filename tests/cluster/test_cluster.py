"""Integration tests for the simulated cluster."""

import pytest

from repro.cluster import LSMCluster
from repro.core import StatisticsConfig
from repro.errors import ClusterError
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.synopses import SynopsisType
from repro.types import Domain

VALUE_DOMAIN = Domain(0, 999)


def _cluster(synopsis_type=SynopsisType.GROUND_TRUTH, **kwargs):
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(synopsis_type, budget=128),
    )
    cluster.create_dataset(
        "ds",
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        **kwargs,
    )
    return cluster


def _doc(pk, value):
    return {"id": pk, "value": value}


class TestTopology:
    def test_default_matches_paper(self):
        cluster = LSMCluster()
        assert len(cluster.nodes) == 4
        assert cluster.num_partitions == 8

    def test_invalid_topology(self):
        with pytest.raises(ClusterError):
            LSMCluster(num_nodes=0)

    def test_duplicate_dataset(self):
        cluster = _cluster()
        with pytest.raises(ClusterError):
            cluster.create_dataset("ds", "id", Domain(0, 10))

    def test_unknown_dataset(self):
        cluster = LSMCluster(num_nodes=1)
        with pytest.raises(ClusterError):
            cluster.insert("nope", {"id": 1})


class TestDistributedIngestion:
    def test_records_spread_over_partitions(self):
        cluster = _cluster(memtable_capacity=16)
        for pk in range(200):
            cluster.insert("ds", _doc(pk, pk % 1000))
        cluster.flush_all("ds")
        assert cluster.count_records("ds") == 200
        per_node = [node.count_records("ds") for node in cluster.nodes]
        assert all(count > 0 for count in per_node)

    def test_update_and_delete_route_correctly(self):
        cluster = _cluster(memtable_capacity=16)
        for pk in range(100):
            cluster.insert("ds", _doc(pk, pk))
        assert cluster.update("ds", _doc(7, 900))
        assert cluster.delete("ds", 13)
        assert not cluster.delete("ds", 13)
        cluster.flush_all("ds")
        assert cluster.count_records("ds") == 99
        assert cluster.count_secondary_range("ds", "value_idx", 900, 900) == 1

    def test_bulkload_partitions(self):
        cluster = _cluster()
        cluster.bulkload("ds", [_doc(pk, pk % 1000) for pk in range(400)])
        assert cluster.count_records("ds") == 400
        # One component per partition.
        assert cluster.component_count("ds", "value_idx") == cluster.num_partitions


class TestDistributedStatistics:
    def test_synopses_shipped_to_master(self):
        cluster = _cluster(memtable_capacity=16)
        for pk in range(100):
            cluster.insert("ds", _doc(pk, pk))
        cluster.flush_all("ds")
        assert cluster.master.stats_messages_received > 0
        assert cluster.network.stats.bytes_sent > 0
        assert cluster.master.catalog.entry_count() > 0

    def test_ground_truth_estimate_is_exact_across_nodes(self):
        cluster = _cluster(memtable_capacity=16)
        for pk in range(300):
            cluster.insert("ds", _doc(pk, (pk * 7) % 1000))
        for pk in range(0, 300, 5):
            cluster.delete("ds", pk)
        cluster.flush_all("ds")
        for lo, hi in [(0, 999), (100, 400), (777, 777)]:
            true = cluster.count_secondary_range("ds", "value_idx", lo, hi)
            assert cluster.estimate("ds", "value_idx", lo, hi) == pytest.approx(true)

    def test_merge_policy_runs_per_partition(self):
        cluster = _cluster(
            memtable_capacity=8,
            merge_policy_factory=lambda: ConstantMergePolicy(2),
        )
        for pk in range(400):
            cluster.insert("ds", _doc(pk, pk % 1000))
        cluster.flush_all("ds")
        assert cluster.component_count("ds", "value_idx") <= 2 * cluster.num_partitions
        true = cluster.count_secondary_range("ds", "value_idx", 0, 999)
        assert cluster.estimate("ds", "value_idx", 0, 999) == pytest.approx(true)

    def test_wavelet_estimates_over_cluster(self):
        cluster = _cluster(SynopsisType.WAVELET, memtable_capacity=32)
        for pk in range(500):
            cluster.insert("ds", _doc(pk, pk % 1000))
        cluster.flush_all("ds")
        true = cluster.count_secondary_range("ds", "value_idx", 100, 299)
        estimate = cluster.estimate("ds", "value_idx", 100, 299)
        assert estimate == pytest.approx(true, rel=0.2)

    def test_estimation_needs_no_node_io(self):
        cluster = _cluster(memtable_capacity=16)
        for pk in range(100):
            cluster.insert("ds", _doc(pk, pk))
        cluster.flush_all("ds")
        before = [node.disk.stats.snapshot() for node in cluster.nodes]
        cluster.estimate("ds", "value_idx", 0, 999)
        for node, snapshot in zip(cluster.nodes, before):
            delta = node.disk.stats.delta(snapshot)
            assert delta.pages_read == 0


class TestInsertMany:
    def test_routed_batch_matches_per_document(self):
        many = _cluster()
        loop = _cluster()
        docs = [_doc(pk, pk % 1000) for pk in range(300)]
        assert many.insert_many("ds", docs) == 300
        for doc in docs:
            loop.insert("ds", doc)
        assert many.count_records("ds") == loop.count_records("ds") == 300
        assert many.count_secondary_range(
            "ds", "value_idx", 0, 499
        ) == loop.count_secondary_range("ds", "value_idx", 0, 499)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ClusterError):
            _cluster().insert_many("nope", [_doc(1, 1)])
