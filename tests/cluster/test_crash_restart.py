"""Cluster-level crash restart: epoch fencing and statistics recovery."""

import pytest

from repro.cluster.cluster import LSMCluster
from repro.cluster.crashcheck import format_report, run_crashcheck
from repro.cluster.faults import FaultPlan, LinkFaults
from repro.cluster.node import RetryPolicy
from repro.core.config import StatisticsConfig
from repro.errors import ClusterError
from repro.lsm.dataset import IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.synopses.base import SynopsisType
from repro.types import Domain


def _build_cluster(durable=True, wal_enabled=True, fault_plan=None):
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32),
        fault_plan=fault_plan,
        retry_policy=RetryPolicy.immediate(max_attempts=3),
        durable=durable,
        wal_enabled=wal_enabled,
    )
    cluster.create_dataset(
        "ds",
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=16,
        merge_policy_factory=lambda: ConstantMergePolicy(max_components=3),
    )
    return cluster


def _ingest(cluster, records=100):
    for pk in range(records):
        cluster.insert("ds", {"id": pk, "value": (pk * 13) % 1024})
    for pk in range(0, records, 9):
        cluster.delete("ds", pk)


def test_durable_restart_preserves_contents_and_estimates():
    cluster = _build_cluster()
    _ingest(cluster)
    cluster.flush_all("ds")
    cluster.recover_statistics()
    before_count = cluster.count_records("ds")
    before_estimates = [
        cluster.estimate("ds", "value_idx", lo, lo + 63)
        for lo in range(0, 1024, 128)
    ]
    cluster.restart_nodes()
    cluster.recover_statistics()
    assert cluster.count_records("ds") == before_count
    assert [
        cluster.estimate("ds", "value_idx", lo, lo + 63)
        for lo in range(0, 1024, 128)
    ] == before_estimates


def test_restart_preserves_unflushed_acked_writes():
    cluster = _build_cluster()
    _ingest(cluster, records=20)  # nothing flushed (capacity 16/partition)
    before = cluster.count_records("ds")
    cluster.restart_nodes()
    cluster.recover_statistics()
    assert cluster.count_records("ds") == before
    assert cluster.get("ds", 1) is not None


def test_non_durable_restart_loses_everything():
    cluster = _build_cluster(durable=False)
    _ingest(cluster)
    cluster.flush_all("ds")
    cluster.restart_nodes()
    cluster.recover_statistics()
    assert cluster.count_records("ds") == 0
    # The epoch reset also cleared the now-meaningless catalog entries.
    assert cluster.master.catalog.entry_count() == 0


def test_restart_bumps_epoch_and_resets_catalog_generation():
    cluster = _build_cluster()
    _ingest(cluster)
    cluster.flush_all("ds")
    cluster.recover_statistics()
    epochs_before = [node.epoch for node in cluster.nodes]
    cluster.restart_nodes()
    cluster.recover_statistics()
    assert [node.epoch for node in cluster.nodes] == [
        epoch + 1 for epoch in epochs_before
    ]
    # Every surviving catalog entry was published under the new epoch.
    catalog = cluster.master.catalog
    for index_name in catalog.index_names():
        for entry in catalog.entries_for(index_name):
            assert entry.epoch == 1


def test_stale_epoch_messages_are_fenced_out():
    cluster = _build_cluster()
    _ingest(cluster)
    cluster.flush_all("ds")
    cluster.recover_statistics()
    cluster.restart_nodes()
    cluster.recover_statistics()
    master = cluster.master
    entries_before = master.catalog.entry_count()
    # A straggler publish from the crashed incarnation (epoch 0).
    master._on_message(
        cluster.nodes[0].node_id,
        {
            "kind": "stats.publish",
            "index": "ds:primary",
            "partition": 0,
            "seq": 10**6,
            "epoch": 0,
            "component_uid": 10**6,
            "synopsis": {"type": "equi_width", "lo": 0, "hi": 1, "heights": [1]},
            "anti_synopsis": {
                "type": "equi_width",
                "lo": 0,
                "hi": 1,
                "heights": [0],
            },
        },
    )
    assert master.catalog.entry_count() == entries_before


def test_unknown_message_kind_still_rejected():
    cluster = _build_cluster()
    with pytest.raises(ClusterError):
        cluster.master._on_message("nc1", {"kind": "stats.gossip"})


def test_recover_statistics_reports_per_node_backlog():
    # A wire that drops everything: recovery cannot converge and the
    # error must name each node's parked backlog.
    hostile = FaultPlan(seed=0, default=LinkFaults(drop=1.0))
    cluster = _build_cluster(fault_plan=hostile)
    _ingest(cluster)
    cluster.flush_all("ds")
    with pytest.raises(ClusterError, match=r"nc1=\d+, nc2=\d+"):
        cluster.recover_statistics(max_rounds=5)


def test_crashcheck_converges():
    # 512 records is the smallest workload whose per-partition share
    # produces enough flushes to reach the merge crash points.
    report = run_crashcheck(seed=1, records=512)
    assert report.converged, format_report(report)
    assert report.crashes_fired == len(report.points_checked)
    assert report.control_records_lost > 0
    # The concurrent sweep (virtual scheduler) must actually crash
    # inside background maintenance tasks, not degrade to a no-op.
    assert report.concurrent_points_checked
    assert report.concurrent_crashes_fired == len(
        report.concurrent_points_checked
    )
