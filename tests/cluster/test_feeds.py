"""Tests for the three feed types."""

import pytest

from repro.cluster import (
    ChangeableFeed,
    DatasetFeedAdapter,
    FeedOperation,
    FeedRecord,
    FileFeed,
    LSMCluster,
    SocketFeed,
)
from repro.core import StatisticsConfig
from repro.errors import ClusterError
from repro.lsm.dataset import IndexSpec
from repro.synopses import SynopsisType
from repro.types import Domain


def _target():
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=1,
        stats_config=StatisticsConfig(SynopsisType.GROUND_TRUTH, budget=64),
    )
    cluster.create_dataset(
        "ds",
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 999))],
        memtable_capacity=25,
    )
    return cluster, DatasetFeedAdapter(cluster, "ds")


def _doc(pk, value):
    return {"id": pk, "value": value}


class TestSocketFeed:
    def test_ingests_and_counts_bytes(self):
        cluster, target = _target()
        feed = SocketFeed(_doc(pk, pk % 1000) for pk in range(100))
        assert feed.run(target) == 100
        assert feed.bytes_received > 0
        target.flush()
        assert cluster.count_records("ds") == 100


class TestFileFeed:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        count = FileFeed.write_file(path, (_doc(pk, pk) for pk in range(50)))
        assert count == 50
        cluster, target = _target()
        feed = FileFeed([path])
        assert feed.run(target) == 50
        target.flush()
        assert cluster.count_records("ds") == 50

    def test_multiple_files(self, tmp_path):
        paths = []
        for i in range(3):
            path = tmp_path / f"part{i}.jsonl"
            docs = (_doc(pk, pk) for pk in range(i * 10, i * 10 + 10))
            FileFeed.write_file(path, docs)
            paths.append(path)
        cluster, target = _target()
        assert FileFeed(paths).run(target) == 30
        target.flush()
        assert cluster.count_records("ds") == 30

    def test_missing_file(self, tmp_path):
        cluster, target = _target()
        with pytest.raises(ClusterError):
            FileFeed([tmp_path / "ghost.jsonl"]).run(target)


class TestChangeableFeed:
    def test_stage_size_validated(self):
        with pytest.raises(ClusterError):
            ChangeableFeed([], stage_size=0)

    def test_mixed_operations(self):
        cluster, target = _target()
        records = [
            FeedRecord(FeedOperation.INSERT, _doc(pk, pk)) for pk in range(60)
        ]
        records += [
            FeedRecord(FeedOperation.UPDATE, _doc(pk, pk + 500))
            for pk in range(0, 60, 2)
        ]
        records += [
            FeedRecord(FeedOperation.DELETE, _doc(pk, 0)) for pk in range(0, 60, 3)
        ]
        feed = ChangeableFeed(records, stage_size=20)
        counts = feed.run(target)
        assert counts[FeedOperation.INSERT] == 60
        assert counts[FeedOperation.UPDATE] == 30
        assert counts[FeedOperation.DELETE] == 20
        assert feed.stages_completed >= 5
        assert cluster.count_records("ds") == 40

    def test_staged_flushes_generate_antimatter(self):
        cluster, target = _target()
        records = [FeedRecord(FeedOperation.INSERT, _doc(pk, pk)) for pk in range(40)]
        records += [FeedRecord(FeedOperation.DELETE, _doc(pk, 0)) for pk in range(20)]
        ChangeableFeed(records, stage_size=40).run(target)
        # The deletes arrived after a forced flush, so they must appear
        # as anti-matter in some disk component.
        anti_total = 0
        for node in cluster.nodes:
            for partition_id in node.partition_ids:
                tree = node.dataset("ds", partition_id).secondary_tree("value_idx")
                anti_total += sum(c.antimatter_count for c in tree.components)
        assert anti_total == 20
        # And statistics still reconcile exactly (ground-truth type).
        true = cluster.count_secondary_range("ds", "value_idx", 0, 999)
        assert cluster.estimate("ds", "value_idx", 0, 999) == pytest.approx(true)

    def test_update_delete_of_missing_records_fail_softly(self):
        _cluster, target = _target()
        records = [
            FeedRecord(FeedOperation.UPDATE, _doc(1, 5)),
            FeedRecord(FeedOperation.DELETE, _doc(2, 0)),
            FeedRecord(FeedOperation.INSERT, _doc(3, 7)),
        ]
        feed = ChangeableFeed(records, stage_size=10)
        counts = feed.run(target)
        assert feed.failed_operations == 2
        assert counts[FeedOperation.INSERT] == 1
