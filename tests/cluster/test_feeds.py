"""Tests for the three feed types."""

import pytest

from repro.cluster import (
    ChangeableFeed,
    DatasetFeedAdapter,
    FeedOperation,
    FeedRecord,
    FileFeed,
    LSMCluster,
    SocketFeed,
)
from repro.core import StatisticsConfig
from repro.errors import ClusterError, FeedError
from repro.lsm.dataset import IndexSpec
from repro.synopses import SynopsisType
from repro.types import Domain


def _target(scheduler="sync"):
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=1,
        stats_config=StatisticsConfig(SynopsisType.GROUND_TRUTH, budget=64),
        scheduler=scheduler,
    )
    cluster.create_dataset(
        "ds",
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 999))],
        memtable_capacity=25,
    )
    return cluster, DatasetFeedAdapter(cluster, "ds")


def _doc(pk, value):
    return {"id": pk, "value": value}


class TestSocketFeed:
    def test_ingests_and_counts_bytes(self):
        cluster, target = _target()
        feed = SocketFeed(_doc(pk, pk % 1000) for pk in range(100))
        assert feed.run(target) == 100
        assert feed.bytes_received > 0
        target.flush()
        assert cluster.count_records("ds") == 100


class TestSocketFeedHardening:
    def test_malformed_records_are_skipped_and_counted(self):
        cluster, target = _target()
        records = [
            _doc(0, 0),
            "not a dict",
            _doc(1, 1),
            {"id": 2, "value": object()},  # not JSON-serialisable
            _doc(3, 3),
        ]
        feed = SocketFeed(records)
        assert feed.run(target) == 3
        assert feed.invalid_records == 2
        target.flush()
        assert cluster.count_records("ds") == 3

    def test_strict_mode_raises_typed_error(self):
        _cluster, target = _target()
        with pytest.raises(FeedError):
            SocketFeed([_doc(0, 0), "garbage"], strict=True).run(target)


class TestFileFeed:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        count = FileFeed.write_file(path, (_doc(pk, pk) for pk in range(50)))
        assert count == 50
        cluster, target = _target()
        feed = FileFeed([path])
        assert feed.run(target) == 50
        target.flush()
        assert cluster.count_records("ds") == 50

    def test_multiple_files(self, tmp_path):
        paths = []
        for i in range(3):
            path = tmp_path / f"part{i}.jsonl"
            docs = (_doc(pk, pk) for pk in range(i * 10, i * 10 + 10))
            FileFeed.write_file(path, docs)
            paths.append(path)
        cluster, target = _target()
        assert FileFeed(paths).run(target) == 30
        target.flush()
        assert cluster.count_records("ds") == 30

    def test_missing_file(self, tmp_path):
        cluster, target = _target()
        with pytest.raises(ClusterError):
            FileFeed([tmp_path / "ghost.jsonl"]).run(target)

    def test_malformed_lines_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(
            '{"id": 0, "value": 0}\n'
            '{"id": 1, "value"\n'  # truncated JSON
            "\x00\x7f garbage bytes\n"
            "[1, 2, 3]\n"  # valid JSON, not an object
            "\n"  # blank line: not a record, not an error
            '{"id": 2, "value": 2}\n'
        )
        cluster, target = _target()
        feed = FileFeed([path])
        assert feed.run(target) == 2
        assert feed.invalid_records == 3
        target.flush()
        assert cluster.count_records("ds") == 2

    def test_strict_mode_fails_fast_on_corrupt_line(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text('{"id": 0, "value": 0}\nnot json\n')
        _cluster, target = _target()
        with pytest.raises(FeedError):
            FileFeed([path], strict=True).run(target)

    def test_cursor_aware_read_resumes_past_position(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        FileFeed.write_file(path, (_doc(pk, pk) for pk in range(10)))
        feed = FileFeed([path])
        tail = list(feed.read(after=7))
        assert [seqno for seqno, _record in tail] == [8, 9, 10]
        assert [record.document["id"] for _seqno, record in tail] == [7, 8, 9]
        assert feed.closed  # finite source: exhausting it ends a tail


class TestChangeableFeed:
    def test_stage_size_validated(self):
        with pytest.raises(ClusterError):
            ChangeableFeed([], stage_size=0)

    def test_mixed_operations(self):
        cluster, target = _target()
        records = [
            FeedRecord(FeedOperation.INSERT, _doc(pk, pk)) for pk in range(60)
        ]
        records += [
            FeedRecord(FeedOperation.UPDATE, _doc(pk, pk + 500))
            for pk in range(0, 60, 2)
        ]
        records += [
            FeedRecord(FeedOperation.DELETE, _doc(pk, 0)) for pk in range(0, 60, 3)
        ]
        feed = ChangeableFeed(records, stage_size=20)
        counts = feed.run(target)
        assert counts[FeedOperation.INSERT] == 60
        assert counts[FeedOperation.UPDATE] == 30
        assert counts[FeedOperation.DELETE] == 20
        assert feed.stages_completed >= 5
        assert cluster.count_records("ds") == 40

    def test_staged_flushes_generate_antimatter(self):
        cluster, target = _target()
        records = [FeedRecord(FeedOperation.INSERT, _doc(pk, pk)) for pk in range(40)]
        records += [FeedRecord(FeedOperation.DELETE, _doc(pk, 0)) for pk in range(20)]
        ChangeableFeed(records, stage_size=40).run(target)
        # The deletes arrived after a forced flush, so they must appear
        # as anti-matter in some disk component.
        anti_total = 0
        for node in cluster.nodes:
            for partition_id in node.partition_ids:
                tree = node.dataset("ds", partition_id).secondary_tree("value_idx")
                anti_total += sum(c.antimatter_count for c in tree.components)
        assert anti_total == 20
        # And statistics still reconcile exactly (ground-truth type).
        true = cluster.count_secondary_range("ds", "value_idx", 0, 999)
        assert cluster.estimate("ds", "value_idx", 0, 999) == pytest.approx(true)

    def test_update_delete_of_missing_records_fail_softly(self):
        _cluster, target = _target()
        records = [
            FeedRecord(FeedOperation.UPDATE, _doc(1, 5)),
            FeedRecord(FeedOperation.DELETE, _doc(2, 0)),
            FeedRecord(FeedOperation.INSERT, _doc(3, 7)),
        ]
        feed = ChangeableFeed(records, stage_size=10)
        counts = feed.run(target)
        assert feed.failed_operations == 2
        assert counts[FeedOperation.INSERT] == 1


class TestThreadsScheduler:
    """The feeds against real background flushes and merges."""

    def test_adapter_ingest_under_threads_scheduler(self):
        cluster, target = _target(scheduler="threads")
        try:
            feed = SocketFeed(_doc(pk, pk % 1000) for pk in range(200))
            assert feed.run(target) == 200
            target.flush()
            cluster.drain_maintenance()
            assert cluster.count_records("ds") == 200
        finally:
            cluster.shutdown()

    def test_changeable_feed_under_threads_scheduler(self):
        cluster, target = _target(scheduler="threads")
        try:
            records = [
                FeedRecord(FeedOperation.INSERT, _doc(pk, pk)) for pk in range(80)
            ]
            records += [
                FeedRecord(FeedOperation.DELETE, _doc(pk, 0))
                for pk in range(0, 80, 4)
            ]
            counts = ChangeableFeed(records, stage_size=25).run(target)
            cluster.drain_maintenance()
            assert counts[FeedOperation.INSERT] == 80
            assert counts[FeedOperation.DELETE] == 20
            assert cluster.count_records("ds") == 60
            # The estimate only sees flushed components, so it may be
            # off by the handful of ops resolved inside a memtable --
            # identical to what the sync scheduler reports for this
            # workload; the point here is no divergence under threads.
            true = cluster.count_secondary_range("ds", "value_idx", 0, 999)
            assert abs(cluster.estimate("ds", "value_idx", 0, 999) - true) <= 2
        finally:
            cluster.shutdown()
