"""Tests for statistics-driven distributed query execution."""

import pytest

from repro.cluster import DistributedQueryExecutor, LSMCluster
from repro.core import StatisticsConfig
from repro.errors import QueryError
from repro.lsm.dataset import IndexSpec
from repro.query import AccessMethod, RangePredicate
from repro.synopses import SynopsisType
from repro.types import Domain

VALUE_DOMAIN = Domain(0, 9_999)


def _cluster(num_records=8000):
    cluster = LSMCluster(
        num_nodes=2,
        partitions_per_node=2,
        stats_config=StatisticsConfig(SynopsisType.EQUI_HEIGHT, budget=256),
    )
    cluster.create_dataset(
        "orders",
        primary_key="id",
        primary_domain=Domain(0, 2**62),
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
    )
    cluster.bulkload(
        "orders",
        [{"id": pk, "value": pk % 10_000} for pk in range(num_records)],
    )
    return cluster


class TestPlanning:
    def test_planning_touches_no_storage_node(self):
        cluster = _cluster()
        executor = DistributedQueryExecutor(cluster)
        before = [node.disk.stats.snapshot() for node in cluster.nodes]
        executor.plan("orders", RangePredicate("value", 5, 6))
        for node, snapshot in zip(cluster.nodes, before):
            assert node.disk.stats.delta(snapshot).pages_read == 0

    def test_selective_plans_index_probe(self):
        cluster = _cluster()
        executor = DistributedQueryExecutor(cluster)
        method, estimate, total = executor.plan(
            "orders", RangePredicate("value", 5, 6)
        )
        assert method is AccessMethod.INDEX_PROBE
        assert estimate < 20
        assert total == pytest.approx(8000, rel=0.05)

    def test_wide_plans_full_scan(self):
        cluster = _cluster()
        executor = DistributedQueryExecutor(cluster)
        method, estimate, _total = executor.plan(
            "orders", RangePredicate("value", 0, 9_999)
        )
        assert method is AccessMethod.FULL_SCAN
        assert estimate == pytest.approx(8000, rel=0.05)

    def test_unknown_field(self):
        cluster = _cluster(num_records=100)
        executor = DistributedQueryExecutor(cluster)
        with pytest.raises(QueryError):
            executor.plan("orders", RangePredicate("missing", 0, 1))


class TestExecution:
    def test_results_match_ground_truth(self):
        cluster = _cluster()
        executor = DistributedQueryExecutor(cluster)
        for lo, hi in [(5, 6), (100, 300), (0, 9_999)]:
            result = executor.execute("orders", RangePredicate("value", lo, hi))
            true = cluster.count_secondary_range("orders", "value_idx", lo, hi)
            assert result.cardinality == true
            assert result.partitions_executed == cluster.num_partitions

    def test_both_paths_agree(self):
        cluster = _cluster(num_records=2000)
        executor = DistributedQueryExecutor(cluster)
        predicate = RangePredicate("value", 100, 200)
        probe = executor.execute("orders", predicate, AccessMethod.INDEX_PROBE)
        scan = executor.execute("orders", predicate, AccessMethod.FULL_SCAN)
        assert sorted(r["id"] for r in probe.records) == sorted(
            r["id"] for r in scan.records
        )

    def test_chosen_path_is_cheaper_at_extremes(self):
        cluster = _cluster()
        executor = DistributedQueryExecutor(cluster)

        def weighted(io):
            return io.random_reads * 10 + io.sequential_reads

        narrow = RangePredicate("value", 7, 8)
        probe = executor.execute("orders", narrow, AccessMethod.INDEX_PROBE)
        scan = executor.execute("orders", narrow, AccessMethod.FULL_SCAN)
        assert weighted(probe.io) < weighted(scan.io)
        planned = executor.execute("orders", narrow)
        assert planned.method is AccessMethod.INDEX_PROBE

        wide = RangePredicate("value", 0, 9_999)
        probe = executor.execute("orders", wide, AccessMethod.INDEX_PROBE)
        scan = executor.execute("orders", wide, AccessMethod.FULL_SCAN)
        assert weighted(scan.io) < weighted(probe.io)
        planned = executor.execute("orders", wide)
        assert planned.method is AccessMethod.FULL_SCAN
