"""Robustness of the statistics network protocol."""

import pytest

from repro.cluster.master import ClusterController
from repro.cluster.network import Network
from repro.errors import ClusterError, SynopsisError
from repro.synopses import SynopsisType, create_builder
from repro.synopses.factory import synopsis_from_payload
from repro.types import Domain


def _payload(values=(1, 2, 3)):
    builder = create_builder(SynopsisType.EQUI_WIDTH, Domain(0, 9), 4, len(values))
    for value in sorted(values):
        builder.add(value)
    return builder.build().to_payload()


def test_unknown_message_kind_rejected():
    network = Network()
    ClusterController(network)
    with pytest.raises(ClusterError):
        network.send("nc1", "cc", {"kind": "stats.exfiltrate"})


def test_missing_kind_rejected():
    network = Network()
    ClusterController(network)
    with pytest.raises(ClusterError):
        network.send("nc1", "cc", {"index": "x"})


def test_malformed_synopsis_payload_rejected():
    with pytest.raises(SynopsisError):
        synopsis_from_payload({"type": "not_a_synopsis"})
    with pytest.raises(SynopsisError):
        synopsis_from_payload({})


def test_publish_retract_roundtrip_over_wire():
    network = Network()
    master = ClusterController(network)
    network.send(
        "nc1",
        "cc",
        {
            "kind": "stats.publish",
            "index": "idx",
            "partition": 0,
            "component_uid": 7,
            "synopsis": _payload(),
            "anti_synopsis": _payload(()),
        },
    )
    assert master.catalog.entry_count("idx") == 1
    assert master.estimate("idx", 0, 9) == pytest.approx(3)
    network.send(
        "nc1",
        "cc",
        {
            "kind": "stats.retract",
            "index": "idx",
            "partition": 0,
            "component_uids": [7],
        },
    )
    assert master.catalog.entry_count("idx") == 0
    assert master.estimate("idx", 0, 9) == 0.0


def test_retract_from_other_node_is_isolated():
    """A node can only retract its own entries (node id comes from the
    transport, not the message body)."""
    network = Network()
    master = ClusterController(network)
    message = {
        "kind": "stats.publish",
        "index": "idx",
        "partition": 0,
        "component_uid": 1,
        "synopsis": _payload(),
        "anti_synopsis": _payload(()),
    }
    network.send("nc1", "cc", message)
    network.send(
        "nc2",
        "cc",
        {
            "kind": "stats.retract",
            "index": "idx",
            "partition": 0,
            "component_uids": [1],
        },
    )
    # nc2's retract names the same (partition, uid) but a different
    # source node, so nc1's entry survives.
    assert master.catalog.entry_count("idx") == 1
