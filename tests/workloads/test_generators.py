"""Tests for the tweet and WorldCup record generators."""

import numpy as np
import pytest

from repro.types import Domain
from repro.workloads.distributions import (
    DistributionSpec,
    FrequencyDistribution,
    SpreadDistribution,
    generate_distribution,
)
from repro.workloads.tweets import VALUE_FIELD, TweetGenerator
from repro.workloads.worldcup import WORLDCUP_FIELDS, WorldCupGenerator


def _distribution(total=300):
    return generate_distribution(
        DistributionSpec(
            SpreadDistribution.ZIPF,
            FrequencyDistribution.ZIPF,
            Domain(0, 999),
            num_values=40,
            total_records=total,
            seed=5,
        )
    )


class TestTweetGenerator:
    def test_realises_distribution_exactly(self):
        dist = _distribution()
        docs = list(TweetGenerator(dist, seed=1).generate())
        assert len(docs) == dist.total_records
        values, counts = np.unique(
            [d[VALUE_FIELD] for d in docs], return_counts=True
        )
        assert list(values) == list(dist.values)
        assert list(counts) == list(dist.frequencies)

    def test_pks_sequential_and_unique(self):
        docs = list(TweetGenerator(_distribution(), seed=1).generate())
        assert [d["id"] for d in docs] == list(range(len(docs)))

    def test_message_size_configurable(self):
        docs = list(TweetGenerator(_distribution(), message_bytes=64).generate())
        assert all(len(d["message"]) == 64 for d in docs)

    def test_shuffle_differs_by_seed(self):
        dist = _distribution()
        a = [d[VALUE_FIELD] for d in TweetGenerator(dist, seed=1).generate()]
        b = [d[VALUE_FIELD] for d in TweetGenerator(dist, seed=2).generate()]
        assert a != b
        assert sorted(a) == sorted(b)


class TestWorldCupGenerator:
    def test_record_shape(self):
        docs = list(WorldCupGenerator(100, seed=3).generate())
        assert len(docs) == 100
        field_names = {f.name for f in WORLDCUP_FIELDS}
        for doc in docs:
            assert field_names <= set(doc)
            for spec in WORLDCUP_FIELDS:
                assert doc[spec.name] in spec.domain

    def test_empty(self):
        assert list(WorldCupGenerator(0).generate()) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WorldCupGenerator(-1)

    def test_deterministic(self):
        a = list(WorldCupGenerator(50, seed=9).generate())
        b = list(WorldCupGenerator(50, seed=9).generate())
        assert a == b

    def test_timestamps_clustered_and_monotone(self):
        docs = list(WorldCupGenerator(500, seed=0).generate())
        timestamps = [d["timestamp"] for d in docs]
        assert timestamps == sorted(timestamps)
        # Narrow band far from the int32 extremes (Figure 9's point).
        spread = max(timestamps) - min(timestamps)
        assert spread < 2**31 * 1e-4

    def test_size_heavy_tailed(self):
        docs = WorldCupGenerator(2000, seed=0).generate()
        sizes = np.array([d["size"] for d in docs])
        assert np.median(sizes) * 10 < sizes.max()

    def test_categorical_fields_spiky(self):
        docs = list(WorldCupGenerator(2000, seed=0).generate())
        statuses = {d["status"] for d in docs}
        servers = {d["server"] for d in docs}
        # Few distinct codes scattered over the int8 domain.
        assert 2 <= len(statuses) <= 10
        assert 2 <= len(servers) <= 20
        assert max(statuses) - min(statuses) > 20  # separated by zero gaps
