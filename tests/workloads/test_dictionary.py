"""Tests for dictionary encoding of string fields."""

import pytest

from repro.errors import DomainError
from repro.workloads.dictionary import StringDictionary


def test_encode_assigns_dense_codes():
    d = StringDictionary()
    assert d.encode("b") == 0
    assert d.encode("a") == 1
    assert d.encode("b") == 0  # stable
    assert len(d) == 2


def test_decode_roundtrip():
    d = StringDictionary()
    for token in ["x", "y", "z"]:
        assert d.decode(d.encode(token)) == token
    with pytest.raises(DomainError):
        d.decode(3)
    with pytest.raises(DomainError):
        d.decode(-1)


def test_contains():
    d = StringDictionary()
    d.encode("hello")
    assert "hello" in d
    assert "world" not in d


def test_capacity():
    d = StringDictionary(capacity=2)
    d.encode("a")
    d.encode("b")
    with pytest.raises(DomainError):
        d.encode("c")
    with pytest.raises(DomainError):
        StringDictionary(capacity=0)


def test_frozen_sorted_preserves_order():
    d = StringDictionary.frozen_sorted(["pear", "apple", "mango", "apple"])
    assert list(d.tokens()) == ["apple", "mango", "pear"]
    assert d.encode("apple") < d.encode("mango") < d.encode("pear")
    with pytest.raises(DomainError):
        d.encode("unknown")


def test_code_domain():
    d = StringDictionary()
    with pytest.raises(DomainError):
        d.code_domain()
    d.encode("a")
    d.encode("b")
    domain = d.code_domain()
    assert (domain.lo, domain.hi) == (0, 1)
