"""Tests for the query workload generators."""

import pytest

from repro.errors import ConfigurationError
from repro.types import Domain
from repro.workloads.queries import QueryType, QueryWorkloadGenerator, RangeQuery

DOMAIN = Domain(0, 999)


def test_range_query_validation():
    with pytest.raises(ConfigurationError):
        RangeQuery(5, 4)
    assert RangeQuery(5, 5).length == 1
    assert RangeQuery(0, 9).length == 10


class TestShapes:
    def setup_method(self):
        self.generator = QueryWorkloadGenerator(DOMAIN, seed=42)

    def test_point(self):
        for query in self.generator.generate(QueryType.POINT, 50):
            assert query.lo == query.hi
            assert query.lo in DOMAIN

    def test_fixed_length_exact(self):
        for query in self.generator.generate(QueryType.FIXED_LENGTH, 50, 128):
            assert query.length == 128
            assert query.lo in DOMAIN and query.hi in DOMAIN

    def test_fixed_length_bounds(self):
        with pytest.raises(ConfigurationError):
            self.generator.fixed_length(0)
        with pytest.raises(ConfigurationError):
            self.generator.fixed_length(DOMAIN.length + 1)
        # Full-domain length is legal and pins both borders.
        query = self.generator.fixed_length(DOMAIN.length)
        assert (query.lo, query.hi) == (DOMAIN.lo, DOMAIN.hi)

    def test_half_open_touches_extreme(self):
        touches_hi = touches_lo = 0
        for query in self.generator.generate(QueryType.HALF_OPEN, 100):
            assert query.lo == DOMAIN.lo or query.hi == DOMAIN.hi
            touches_lo += query.lo == DOMAIN.lo
            touches_hi += query.hi == DOMAIN.hi
        assert touches_lo > 10 and touches_hi > 10  # both sides occur

    def test_random_ordered(self):
        for query in self.generator.generate(QueryType.RANDOM, 100):
            assert DOMAIN.lo <= query.lo <= query.hi <= DOMAIN.hi


def test_deterministic_in_seed():
    a = list(QueryWorkloadGenerator(DOMAIN, seed=7).generate(QueryType.RANDOM, 20))
    b = list(QueryWorkloadGenerator(DOMAIN, seed=7).generate(QueryType.RANDOM, 20))
    assert a == b
    c = list(QueryWorkloadGenerator(DOMAIN, seed=8).generate(QueryType.RANDOM, 20))
    assert a != c
