"""Tests for the Poosala distribution framework."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.types import Domain
from repro.workloads.distributions import (
    DistributionSpec,
    FrequencyDistribution,
    SpreadDistribution,
    generate_distribution,
    generate_value_set,
)

DOMAIN = Domain(0, 9999)


def _spec(spread, frequency, num_values=100, total=5000, seed=1):
    return DistributionSpec(spread, frequency, DOMAIN, num_values, total, seed=seed)


class TestSpecValidation:
    def test_too_many_values(self):
        with pytest.raises(ConfigurationError):
            DistributionSpec(
                SpreadDistribution.UNIFORM,
                FrequencyDistribution.UNIFORM,
                Domain(0, 9),
                num_values=11,
                total_records=20,
            )

    def test_too_few_records(self):
        with pytest.raises(ConfigurationError):
            _spec(
                SpreadDistribution.UNIFORM,
                FrequencyDistribution.UNIFORM,
                num_values=100,
                total=99,
            )


@pytest.mark.parametrize("spread", list(SpreadDistribution))
@pytest.mark.parametrize("frequency", list(FrequencyDistribution))
class TestAllCombinations:
    def test_invariants(self, spread, frequency):
        dist = generate_distribution(_spec(spread, frequency))
        assert len(dist.values) == 100
        assert len(dist.frequencies) == 100
        assert list(dist.values) == sorted(set(dist.values))
        assert all(v in DOMAIN for v in dist.values)
        assert all(f >= 1 for f in dist.frequencies)
        assert sum(dist.frequencies) == 5000
        assert dist.total_records == 5000

    def test_deterministic_in_seed(self, spread, frequency):
        a = generate_distribution(_spec(spread, frequency, seed=7))
        b = generate_distribution(_spec(spread, frequency, seed=7))
        assert a.values == b.values
        assert a.frequencies == b.frequencies


class TestSpreadShapes:
    def _spreads(self, spread, num_values=64):
        rng = np.random.default_rng(0)
        values = generate_value_set(spread, DOMAIN, num_values, 1.0, rng)
        return np.diff(np.asarray(values))

    def test_uniform_spreads_equal(self):
        spreads = self._spreads(SpreadDistribution.UNIFORM)
        assert spreads.max() - spreads.min() <= 1

    def test_zipf_spreads_decreasing(self):
        spreads = self._spreads(SpreadDistribution.ZIPF)
        # Allow rounding jitter of 1 between neighbours.
        assert all(b <= a + 1 for a, b in zip(spreads, spreads[1:]))
        assert spreads[0] > spreads[-1]

    def test_zipf_increasing_spreads_increasing(self):
        spreads = self._spreads(SpreadDistribution.ZIPF_INCREASING)
        assert spreads[-1] > spreads[0]

    def test_cusp_min_shape(self):
        spreads = self._spreads(SpreadDistribution.CUSP_MIN)
        half = len(spreads) // 2
        middle = spreads[half - 2 : half + 2].mean()
        assert middle < spreads[0]
        assert middle < spreads[-1]

    def test_cusp_max_shape(self):
        spreads = self._spreads(SpreadDistribution.CUSP_MAX)
        half = len(spreads) // 2
        middle = spreads[half - 2 : half + 2].mean()
        assert middle > spreads[0]
        assert middle > spreads[-1]

    def test_values_span_domain(self):
        for spread in SpreadDistribution:
            rng = np.random.default_rng(3)
            values = generate_value_set(spread, DOMAIN, 50, 1.0, rng)
            assert values[-1] == DOMAIN.hi


class TestFrequencyShapes:
    def test_uniform_frequencies_equal(self):
        dist = generate_distribution(
            _spec(SpreadDistribution.UNIFORM, FrequencyDistribution.UNIFORM)
        )
        frequencies = np.asarray(dist.frequencies)
        assert frequencies.max() - frequencies.min() <= 1

    def test_zipf_frequencies_skewed(self):
        dist = generate_distribution(
            _spec(SpreadDistribution.UNIFORM, FrequencyDistribution.ZIPF)
        )
        assert dist.frequencies[0] > 10 * dist.frequencies[-1]


class TestTruth:
    def test_frequency_of(self):
        dist = generate_distribution(
            _spec(SpreadDistribution.UNIFORM, FrequencyDistribution.UNIFORM)
        )
        value = dist.values[10]
        assert dist.frequency_of(value) == dist.frequencies[10]
        missing = value + 1 if value + 1 not in dist.values else value - 1
        assert dist.frequency_of(missing) == 0

    def test_true_range_count_matches_bruteforce(self):
        dist = generate_distribution(
            _spec(SpreadDistribution.ZIPF, FrequencyDistribution.ZIPF_RANDOM)
        )
        for lo, hi in [(0, 9999), (100, 5000), (9999, 9999), (5000, 100)]:
            brute = sum(
                f for v, f in zip(dist.values, dist.frequencies) if lo <= v <= hi
            )
            assert dist.true_range_count(lo, hi) == brute

    def test_record_values_realise_frequencies(self):
        dist = generate_distribution(
            _spec(SpreadDistribution.ZIPF, FrequencyDistribution.ZIPF, total=500)
        )
        values, counts = np.unique(dist.record_values(), return_counts=True)
        assert list(values) == list(dist.values)
        assert list(counts) == list(dist.frequencies)


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(list(SpreadDistribution)),
    st.sampled_from(list(FrequencyDistribution)),
    st.integers(1, 200),
    st.integers(0, 2**32 - 1),
)
def test_generation_invariants_property(spread, frequency, num_values, seed):
    total = num_values * 3
    spec = DistributionSpec(spread, frequency, DOMAIN, num_values, total, seed=seed)
    dist = generate_distribution(spec)
    assert sum(dist.frequencies) == total
    assert len(set(dist.values)) == num_values
    assert dist.true_range_count(DOMAIN.lo, DOMAIN.hi) == total
