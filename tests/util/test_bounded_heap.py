"""Tests for the top-B bounded min-heap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bounded_heap import BoundedMinHeap


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedMinHeap(0)


def test_fills_to_capacity_without_eviction():
    heap = BoundedMinHeap(3)
    assert heap.add(1.0, "a") is None
    assert heap.add(2.0, "b") is None
    assert heap.add(3.0, "c") is None
    assert len(heap) == 3


def test_evicts_lightest():
    heap = BoundedMinHeap(2)
    heap.add(1.0, "light")
    heap.add(5.0, "heavy")
    evicted = heap.add(3.0, "mid")
    assert evicted == "light"
    assert set(heap.items()) == {"heavy", "mid"}


def test_rejects_too_light():
    heap = BoundedMinHeap(2)
    heap.add(5.0, "a")
    heap.add(4.0, "b")
    rejected = heap.add(1.0, "tiny")
    assert rejected == "tiny"
    assert set(heap.items()) == {"a", "b"}


def test_tie_earlier_wins():
    heap = BoundedMinHeap(1)
    heap.add(2.0, "first")
    rejected = heap.add(2.0, "second")
    assert rejected == "second"
    assert list(heap.items()) == ["first"]


def test_tie_in_full_heap_evicts_latest():
    """Regression: with a full heap of tied weights, a heavier arrival
    must evict the *latest* tied item, keeping the earlier ones (the
    docstring's "earlier wins" determinism contract)."""
    heap = BoundedMinHeap(2)
    heap.add(1.0, "a")
    heap.add(1.0, "b")
    evicted = heap.add(2.0, "c")
    assert evicted == "b"
    assert set(heap.items()) == {"a", "c"}


def test_tie_eviction_order_is_lifo_among_ties():
    heap = BoundedMinHeap(3)
    for name in ("a", "b", "c"):
        heap.add(1.0, name)
    assert heap.add(5.0, "x") == "c"
    assert heap.add(5.0, "y") == "b"
    assert heap.add(5.0, "z") == "a"
    assert set(heap.items()) == {"x", "y", "z"}


def test_min_weight():
    heap = BoundedMinHeap(3)
    with pytest.raises(IndexError):
        heap.min_weight()
    heap.add(2.0, "a")
    heap.add(1.0, "b")
    assert heap.min_weight() == 1.0


@given(
    st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1),
    st.integers(1, 20),
)
def test_keeps_top_k(weights, capacity):
    heap = BoundedMinHeap(capacity)
    for index, weight in enumerate(weights):
        heap.add(weight, index)
    kept = sorted((w for w, _ in heap.weighted_items()), reverse=True)
    expected = sorted(weights, reverse=True)[: min(capacity, len(weights))]
    assert kept == expected
