"""Tests for the shared seeded retry/backoff policy."""

import random

import pytest

from repro.util.retry import RetryPolicy


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff=-0.001)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff=0.1, max_backoff=0.01)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_backoff=0.001, max_backoff=0.004, jitter=0.0)
    rng = random.Random(0)
    assert policy.backoff_for(0, rng) == pytest.approx(0.001)
    assert policy.backoff_for(1, rng) == pytest.approx(0.002)
    assert policy.backoff_for(2, rng) == pytest.approx(0.004)
    assert policy.backoff_for(10, rng) == pytest.approx(0.004)  # capped


def test_jitter_is_proportional_and_seeded():
    policy = RetryPolicy(base_backoff=0.010, max_backoff=0.010, jitter=0.5)
    samples = [policy.backoff_for(0, random.Random(seed)) for seed in range(50)]
    assert all(0.005 <= sample <= 0.015 for sample in samples)
    assert len(set(samples)) > 1  # jitter actually varies
    # Same seed, same jitter: the policy itself holds no hidden state.
    assert policy.backoff_for(0, random.Random(7)) == policy.backoff_for(
        0, random.Random(7)
    )


def test_immediate_policy_never_sleeps():
    slept: list[float] = []
    policy = RetryPolicy.immediate(max_attempts=3)
    assert policy.max_attempts == 3
    assert policy.backoff_for(5, random.Random(0)) == 0.0
    policy.sleep(123.0)  # the hook is a no-op, not time.sleep
    assert slept == []


def test_sleep_hook_is_injectable():
    slept: list[float] = []
    policy = RetryPolicy(sleep=slept.append)
    policy.sleep(policy.backoff_for(1, random.Random(3)))
    assert len(slept) == 1 and slept[0] > 0


def test_reexported_from_historical_home():
    from repro.cluster.node import RetryPolicy as NodeRetryPolicy

    assert NodeRetryPolicy is RetryPolicy
