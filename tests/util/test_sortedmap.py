"""Unit and property tests for the AVL-backed SortedMap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.sortedmap import SortedMap


class TestBasics:
    def test_empty(self):
        m = SortedMap()
        assert len(m) == 0
        assert not m
        assert m.get(1) is None
        assert 1 not in m
        assert list(m.items()) == []

    def test_put_get(self):
        m = SortedMap()
        m.put(2, "b")
        m.put(1, "a")
        m.put(3, "c")
        assert len(m) == 3
        assert m.get(1) == "a"
        assert m.get(2) == "b"
        assert m.get(3) == "c"
        assert m.get(4, "missing") == "missing"

    def test_put_replaces(self):
        m = SortedMap()
        m.put(1, "a")
        m.put(1, "z")
        assert len(m) == 1
        assert m.get(1) == "z"

    def test_remove(self):
        m = SortedMap()
        for k in [5, 3, 8, 1, 4, 7, 9]:
            m.put(k, str(k))
        assert m.remove(3)
        assert not m.remove(3)
        assert len(m) == 6
        assert 3 not in m
        assert list(m.keys()) == [1, 4, 5, 7, 8, 9]

    def test_remove_root_with_two_children(self):
        m = SortedMap()
        for k in [2, 1, 3]:
            m.put(k, k)
        assert m.remove(2)
        assert list(m.keys()) == [1, 3]

    def test_min_max(self):
        m = SortedMap()
        with pytest.raises(KeyError):
            m.min_key()
        with pytest.raises(KeyError):
            m.max_key()
        for k in [4, 2, 9, 0]:
            m.put(k, k)
        assert m.min_key() == 0
        assert m.max_key() == 9

    def test_clear(self):
        m = SortedMap()
        m.put(1, 1)
        m.clear()
        assert len(m) == 0
        assert list(m.items()) == []

    def test_items_sorted(self):
        m = SortedMap()
        for k in [9, 1, 5, 3, 7]:
            m.put(k, k * 10)
        assert list(m.items()) == [(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]

    def test_tuple_keys(self):
        m = SortedMap()
        m.put((2, 1), "a")
        m.put((1, 9), "b")
        m.put((2, 0), "c")
        assert list(m.keys()) == [(1, 9), (2, 0), (2, 1)]


class TestRangeItems:
    def setup_method(self):
        self.m = SortedMap()
        for k in range(0, 100, 2):  # even keys 0..98
            self.m.put(k, k)

    def test_closed_range(self):
        assert [k for k, _ in self.m.range_items(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self):
        assert [k for k, _ in self.m.range_items(9, 15)] == [10, 12, 14]

    def test_open_low(self):
        assert [k for k, _ in self.m.range_items(None, 4)] == [0, 2, 4]

    def test_open_high(self):
        assert [k for k, _ in self.m.range_items(94, None)] == [94, 96, 98]

    def test_fully_open(self):
        assert len(list(self.m.range_items())) == 50

    def test_empty_range(self):
        assert list(self.m.range_items(200, 300)) == []
        assert list(self.m.range_items(11, 11)) == []


@given(st.lists(st.tuples(st.integers(-1000, 1000), st.integers())))
def test_matches_dict_semantics(pairs):
    m = SortedMap()
    reference = {}
    for key, value in pairs:
        m.put(key, value)
        reference[key] = value
    assert len(m) == len(reference)
    assert list(m.items()) == sorted(reference.items())


@settings(max_examples=50)
@given(
    st.lists(st.integers(-100, 100), min_size=1),
    st.lists(st.integers(-100, 100)),
)
def test_insert_then_remove(inserts, removes):
    m = SortedMap()
    reference = {}
    for key in inserts:
        m.put(key, key)
        reference[key] = key
    for key in removes:
        assert m.remove(key) == (key in reference)
        reference.pop(key, None)
    assert list(m.keys()) == sorted(reference)


@settings(max_examples=30)
@given(
    st.sets(st.integers(0, 500)),
    st.integers(0, 500),
    st.integers(0, 500),
)
def test_range_matches_filter(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    m = SortedMap()
    for key in keys:
        m.put(key, key)
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert [k for k, _ in m.range_items(lo, hi)] == expected


class TestRangeBounds:
    """Open/closed bound combinations of ``range_items``."""

    def setup_method(self):
        self.m = SortedMap()
        for k in range(0, 100, 2):  # even keys 0..98
            self.m.put(k, k)

    def test_lo_equals_smallest_key_is_inclusive(self):
        assert [k for k, _ in self.m.range_items(0, 4)] == [0, 2, 4]

    def test_hi_equals_largest_key_is_inclusive(self):
        assert [k for k, _ in self.m.range_items(96, 98)] == [96, 98]

    def test_single_key_range(self):
        assert [k for k, _ in self.m.range_items(10, 10)] == [10]

    def test_inverted_range_is_empty(self):
        assert list(self.m.range_items(20, 10)) == []

    def test_open_low_with_bound_between_keys(self):
        assert [k for k, _ in self.m.range_items(None, 5)] == [0, 2, 4]

    def test_open_high_with_bound_between_keys(self):
        assert [k for k, _ in self.m.range_items(93, None)] == [94, 96, 98]

    def test_range_on_empty_map(self):
        assert list(SortedMap().range_items(None, None)) == []


@settings(max_examples=40)
@given(
    st.sets(st.integers(0, 200)),
    st.one_of(st.none(), st.integers(-10, 210)),
    st.one_of(st.none(), st.integers(-10, 210)),
)
def test_half_open_ranges_match_filter(keys, lo, hi):
    m = SortedMap()
    for key in keys:
        m.put(key, key)
    expected = sorted(
        k
        for k in keys
        if (lo is None or k >= lo) and (hi is None or k <= hi)
    )
    assert [k for k, _ in m.range_items(lo, hi)] == expected


def _assert_avl(node):
    """Validate the AVL invariants of a subtree; returns its height."""
    if node is None:
        return 0
    left = _assert_avl(node.left)
    right = _assert_avl(node.right)
    assert node.height == 1 + max(left, right), "stale cached height"
    assert abs(left - right) <= 1, "balance factor out of range"
    if node.left is not None:
        assert node.left.key < node.key
    if node.right is not None:
        assert node.right.key > node.key
    return node.height


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 63)),
        max_size=200,
    )
)
def test_tree_stays_balanced_under_interleaved_put_remove(operations):
    """The AVL invariants (cached heights, |balance| <= 1, BST order)
    hold after every single mutation, not just at the end."""
    m = SortedMap()
    reference = {}
    for is_put, key in operations:
        if is_put:
            m.put(key, key)
            reference[key] = key
        else:
            assert m.remove(key) == (key in reference)
            reference.pop(key, None)
        _assert_avl(m._root)
    assert list(m.keys()) == sorted(reference)
    if reference:
        # A balanced tree of n nodes has height <= ~1.44 log2(n) + 2.
        import math

        assert m._root.height <= 1.44 * math.log2(len(reference) + 1) + 2
