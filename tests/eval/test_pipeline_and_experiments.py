"""Tests for the ingestion pipeline and the figure drivers (tiny scale)."""

import pytest

from repro.core import StatisticsConfig
from repro.eval.experiments import fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9
from repro.eval.experiments.common import ExperimentScale
from repro.eval.pipeline import IngestionBenchmark, IngestionMode
from repro.eval.reporting import format_table
from repro.synopses import SynopsisType
from repro.types import Domain
from repro.workloads.distributions import (
    FrequencyDistribution,
    SpreadDistribution,
)

TINY = ExperimentScale(
    domain_length=2**12, num_values=80, total_records=1200, queries_per_cell=20
)
TWO_SPREADS = [SpreadDistribution.UNIFORM, SpreadDistribution.ZIPF]


def _documents():
    return iter({"id": pk, "value": pk % 1000} for pk in range(500))


class TestIngestionBenchmark:
    @pytest.mark.parametrize("mode", list(IngestionMode))
    def test_all_modes_ingest_everything(self, mode):
        report = IngestionBenchmark(
            documents=_documents,
            num_records=500,
            value_field="value",
            value_domain=Domain(0, 999),
            stats_config=StatisticsConfig(SynopsisType.EQUI_WIDTH, 64),
            mode=mode,
            memtable_capacity=100,
        ).run()
        assert report.records == 500
        assert report.seconds > 0
        assert report.components > 0
        assert report.stats_messages > 0
        assert report.records_per_second > 0

    def test_nostats_ships_nothing(self):
        report = IngestionBenchmark(
            documents=_documents,
            num_records=500,
            value_field="value",
            value_domain=Domain(0, 999),
            stats_config=StatisticsConfig.disabled(),
            mode=IngestionMode.SOCKET_FEED,
            memtable_capacity=100,
        ).run()
        assert report.stats_messages == 0
        assert report.network_bytes == 0
        assert report.stats_label == "NoStats"

    def test_stats_do_not_add_data_path_io(self):
        """The paper's core overhead claim, checked exactly: collecting
        statistics must not change the number of data pages written."""
        def run(config):
            return IngestionBenchmark(
                documents=_documents,
                num_records=500,
                value_field="value",
                value_domain=Domain(0, 999),
                stats_config=config,
                mode=IngestionMode.SOCKET_FEED,
                memtable_capacity=100,
            ).run()

        baseline = run(StatisticsConfig.disabled())
        for synopsis_type in [
            SynopsisType.EQUI_WIDTH,
            SynopsisType.EQUI_HEIGHT,
            SynopsisType.WAVELET,
        ]:
            report = run(StatisticsConfig(synopsis_type, 256))
            assert report.disk_io.pages_written == baseline.disk_io.pages_written
            assert report.disk_io.pages_read == baseline.disk_io.pages_read


class TestFigureDrivers:
    def test_fig2_shapes(self):
        reports = fig2.run(TINY, modes=[IngestionMode.BULKLOAD])
        labels = {r.stats_label for r in reports}
        assert labels == {"NoStats", "equi_width", "equi_height", "wavelet"}
        assert fig2.format_results(reports)

    def test_fig3_rows_and_budget_trend(self):
        rows = fig3.run(
            TINY,
            budgets=[16, 256],
            frequencies=[FrequencyDistribution.ZIPF],
            spreads=TWO_SPREADS,
        )
        assert len(rows) == 2 * 3 * 2  # spreads x types x budgets
        # Wavelets must improve with budget on Zipf spreads.
        wavelet = {
            r["budget"]: r["l1_error"]
            for r in rows
            if r["synopsis"] == "wavelet" and r["spread"] == "Zipf"
        }
        assert wavelet[256] <= wavelet[16]
        assert fig3.format_results(rows)

    def test_fig4_query_type_ordering(self):
        rows = fig4.run(TINY, spreads=[SpreadDistribution.ZIPF])
        by_type = {
            r["query_type"]: r["l1_error"]
            for r in rows
            if r["synopsis"] == "wavelet"
        }
        # Narrow queries err less than wide ones (Figure 4's point).
        assert by_type["Point"] <= by_type["Random"] + 1e-9
        assert fig4.format_results(rows)

    def test_fig5_length_trend(self):
        rows = fig5.run(TINY, lengths=[8, 256], spreads=[SpreadDistribution.ZIPF])
        # The growth-with-length trend holds on average across synopsis
        # types (per-cell monotonicity is a statistical, not pointwise,
        # property at tiny scale).
        mean_by_length = {
            length: sum(r["l1_error"] for r in rows if r["length"] == length)
            for length in (8, 256)
        }
        assert mean_by_length[256] >= mean_by_length[8]
        assert fig5.format_results(rows)

    def test_fig6_component_control(self):
        rows = fig6.run(
            TINY, component_counts=[4, 8], spreads=[SpreadDistribution.UNIFORM]
        )
        counts = {r["components"] for r in rows}
        assert counts == {4, 8}
        budgets = {r["components"]: r["budget_per_component"] for r in rows}
        assert budgets[8] == budgets[4] // 2  # fixed total space
        assert all(r["overhead_ms"] > 0 for r in rows)
        assert fig6.format_results(rows)

    def test_fig7_antimatter_flatness(self):
        rows = fig7.run(TINY, ratios=[0.0, 0.3], spreads=[SpreadDistribution.UNIFORM])
        zero = [r for r in rows if r["ratio"] == 0.0]
        heavy = [r for r in rows if r["ratio"] == 0.3]
        assert all(r["antimatter_records"] == 0 for r in zero)
        assert all(r["antimatter_records"] > 0 for r in heavy)
        assert fig7.format_results(rows)

    def test_fig8_nomerge_costs_more(self):
        rows = fig8.run(TINY, nomerge_flushes=8, spreads=[SpreadDistribution.ZIPF])
        for synopsis in {r["synopsis"] for r in rows}:
            modes = {r["mode"]: r for r in rows if r["synopsis"] == synopsis}
            assert modes["NoMerge"]["components"] > modes["Bulkload"]["components"]
            assert (
                modes["NoMerge"]["catalog_bytes"]
                > modes["Bulkload"]["catalog_bytes"]
            )
        assert fig8.format_results(rows)

    def test_fig9_fields_covered(self):
        rows = fig9.run(TINY, budgets=[16, 64])
        fields = {r["field"] for r in rows}
        assert fields == {
            "timestamp", "client_id", "object_id", "size", "status", "server"
        }
        assert len(rows) == 6 * 3 * 2
        assert fig9.format_results(rows)


def test_format_table():
    text = format_table(["a", "b"], [["x", 1.5], ["y", 0.0001]], title="T")
    assert "T" in text and "x" in text and "1.5" in text
    assert format_table(["only"], []).count("\n") == 1
