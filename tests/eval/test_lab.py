"""Tests for the accuracy labs."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.lab import AccuracyLab, ChangeableWorkloadLab
from repro.synopses import SynopsisType
from repro.types import Domain
from repro.workloads.distributions import (
    DistributionSpec,
    FrequencyDistribution,
    SpreadDistribution,
    generate_distribution,
)
from repro.workloads.queries import QueryWorkloadGenerator, QueryType


def _distribution(seed=3):
    return generate_distribution(
        DistributionSpec(
            SpreadDistribution.ZIPF_RANDOM,
            FrequencyDistribution.ZIPF,
            Domain(0, 4095),
            num_values=100,
            total_records=2000,
            seed=seed,
        )
    )


def _queries(distribution, count=40, seed=11):
    generator = QueryWorkloadGenerator(distribution.spec.domain, seed=seed)
    return list(generator.generate(QueryType.FIXED_LENGTH, count, 128))


class TestAccuracyLab:
    def test_ground_truth_config_is_exact(self):
        """End-to-end pipeline exactness: lab estimates with the oracle
        synopsis must equal the distribution's true counts."""
        distribution = _distribution()
        lab = AccuracyLab(distribution)
        setup = lab.add_config(SynopsisType.GROUND_TRUTH, 1)
        lab.ingest()
        metrics = lab.evaluate(setup, _queries(distribution))
        assert metrics.l1_error == pytest.approx(0.0, abs=1e-12)

    def test_ground_truth_exact_with_flushes_too(self):
        distribution = _distribution()
        lab = AccuracyLab(distribution, memtable_capacity=128)
        setup = lab.add_config(SynopsisType.GROUND_TRUTH, 1)
        lab.ingest()
        assert lab.component_count > 1
        metrics = lab.evaluate(setup, _queries(distribution))
        assert metrics.l1_error == pytest.approx(0.0, abs=1e-12)

    def test_bulkload_creates_single_component(self):
        lab = AccuracyLab(_distribution())
        lab.add_config(SynopsisType.EQUI_WIDTH, 64)
        lab.ingest()
        assert lab.component_count == 1

    def test_larger_budget_not_worse(self):
        distribution = _distribution()
        lab = AccuracyLab(distribution)
        small = lab.add_config(SynopsisType.WAVELET, 8)
        large = lab.add_config(SynopsisType.WAVELET, 1024)
        lab.ingest()
        queries = _queries(distribution)
        error_small = lab.evaluate(small, queries).l1_error
        error_large = lab.evaluate(large, queries).l1_error
        assert error_large <= error_small + 1e-9

    def test_lifecycle_enforcement(self):
        lab = AccuracyLab(_distribution())
        setup = lab.add_config(SynopsisType.EQUI_WIDTH, 64)
        with pytest.raises(ConfigurationError):
            lab.evaluate(setup, [])
        lab.ingest()
        with pytest.raises(ConfigurationError):
            lab.ingest()
        with pytest.raises(ConfigurationError):
            lab.add_config(SynopsisType.WAVELET, 64)

    def test_unregistered_config_rejected(self):
        from repro.eval.lab import SynopsisSetup

        lab = AccuracyLab(_distribution())
        lab.add_config(SynopsisType.EQUI_WIDTH, 64)
        lab.ingest()
        with pytest.raises(ConfigurationError):
            lab.evaluate(SynopsisSetup(SynopsisType.WAVELET, 64), [])

    def test_estimation_overhead_positive(self):
        distribution = _distribution()
        lab = AccuracyLab(distribution, memtable_capacity=256)
        setup = lab.add_config(SynopsisType.EQUI_WIDTH, 64)
        lab.ingest()
        queries = _queries(distribution, count=10)
        cold = lab.estimation_overhead(setup, queries, cold=True)
        warm = lab.estimation_overhead(setup, queries, cold=False)
        assert cold > 0
        assert warm > 0
        with pytest.raises(ConfigurationError):
            lab.estimation_overhead(setup, [])

    def test_catalog_bytes_scale_with_components(self):
        distribution = _distribution()
        single = AccuracyLab(distribution)
        single_setup = single.add_config(SynopsisType.EQUI_WIDTH, 64)
        single.ingest()
        many = AccuracyLab(distribution, memtable_capacity=128)
        many_setup = many.add_config(SynopsisType.EQUI_WIDTH, 64)
        many.ingest()
        assert many.catalog_bytes(many_setup) > single.catalog_bytes(single_setup)


class TestChangeableWorkloadLab:
    def test_ratio_validation(self):
        with pytest.raises(ConfigurationError):
            ChangeableWorkloadLab(_distribution(), update_ratio=0.5, delete_ratio=0.0)
        with pytest.raises(ConfigurationError):
            ChangeableWorkloadLab(_distribution(), update_ratio=0.0, delete_ratio=0.4)
        with pytest.raises(ConfigurationError):
            ChangeableWorkloadLab(
                _distribution(), update_ratio=0.1, delete_ratio=0.1, stages=0
            )

    def test_generates_antimatter(self):
        lab = ChangeableWorkloadLab(
            _distribution(), update_ratio=0.2, delete_ratio=0.2, seed=1
        )
        lab.add_config(SynopsisType.GROUND_TRUTH, 1)
        lab.ingest()
        assert lab.antimatter_records_on_disk() > 0

    def test_zero_ratio_generates_no_antimatter(self):
        lab = ChangeableWorkloadLab(
            _distribution(), update_ratio=0.0, delete_ratio=0.0, seed=1
        )
        lab.add_config(SynopsisType.GROUND_TRUTH, 1)
        lab.ingest()
        assert lab.antimatter_records_on_disk() == 0

    @pytest.mark.parametrize("ratio", [0.0, 0.15, 0.3])
    def test_ground_truth_exact_under_churn(self, ratio):
        """The anti-matter twin mechanism must reconcile exactly."""
        distribution = _distribution()
        lab = ChangeableWorkloadLab(
            distribution, update_ratio=ratio, delete_ratio=ratio, seed=2
        )
        setup = lab.add_config(SynopsisType.GROUND_TRUTH, 1)
        lab.ingest()
        metrics = lab.evaluate(setup, _queries(distribution))
        assert metrics.l1_error == pytest.approx(0.0, abs=1e-12)

    def test_truth_reflects_deletes(self):
        distribution = _distribution()
        lab = ChangeableWorkloadLab(
            distribution, update_ratio=0.0, delete_ratio=0.3, seed=2
        )
        lab.add_config(SynopsisType.GROUND_TRUTH, 1)
        lab.ingest()
        expected_live = distribution.total_records - int(
            0.3 * distribution.total_records
        )
        assert lab.truth.total_records == expected_live

    def test_truth_requires_ingest(self):
        lab = ChangeableWorkloadLab(
            _distribution(), update_ratio=0.1, delete_ratio=0.1
        )
        with pytest.raises(ConfigurationError):
            _ = lab.truth

    def test_ignoring_antimatter_overestimates(self):
        """The ablation hook: dropping the anti-synopsis subtraction
        must overestimate under churn (and be a strict accuracy loss)."""
        distribution = _distribution()
        lab = ChangeableWorkloadLab(
            distribution, update_ratio=0.25, delete_ratio=0.25, seed=4
        )
        setup = lab.add_config(SynopsisType.GROUND_TRUTH, 1)
        lab.ingest()
        queries = _queries(distribution)
        with_twin = lab.evaluate(setup, queries)
        without_twin = lab.evaluate_ignoring_antimatter(setup, queries)
        assert with_twin.l1_error == pytest.approx(0.0, abs=1e-12)
        assert without_twin.l1_error > with_twin.l1_error
