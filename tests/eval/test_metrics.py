"""Tests for the accuracy metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.metrics import ErrorAccumulator, normalized_absolute_error


def test_normalized_error():
    assert normalized_absolute_error(100, 100, 1000) == 0.0
    assert normalized_absolute_error(100, 90, 1000) == pytest.approx(0.01)
    assert normalized_absolute_error(90, 100, 1000) == pytest.approx(0.01)
    with pytest.raises(ConfigurationError):
        normalized_absolute_error(1, 1, 0)


def test_accumulator():
    accumulator = ErrorAccumulator(1000)
    accumulator.add(100, 110)  # 0.01
    accumulator.add(200, 170)  # 0.03
    metrics = accumulator.metrics()
    assert metrics.query_count == 2
    assert metrics.l1_error == pytest.approx(0.02)
    assert metrics.max_error == pytest.approx(0.03)
    assert metrics.mean_true_cardinality == pytest.approx(150)


def test_accumulator_requires_queries():
    with pytest.raises(ConfigurationError):
        ErrorAccumulator(100).metrics()
    with pytest.raises(ConfigurationError):
        ErrorAccumulator(0)


def test_metrics_str():
    accumulator = ErrorAccumulator(100)
    accumulator.add(10, 10)
    assert "L1=" in str(accumulator.metrics())
