"""Tests for the FrequencyIndex ground-truth helper."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.truth import FrequencyIndex


def test_empty():
    index = FrequencyIndex([])
    assert index.total_records == 0
    assert index.distinct_values == 0
    assert index.min_value is None
    assert index.max_value is None
    assert index.count(0, 100) == 0


def test_basic_counts():
    index = FrequencyIndex([5, 5, 5, 10, 20])
    assert index.total_records == 5
    assert index.distinct_values == 3
    assert (index.min_value, index.max_value) == (5, 20)
    assert index.count(5, 5) == 3
    assert index.count(0, 100) == 5
    assert index.count(6, 9) == 0
    assert index.count(10, 5) == 0  # inverted range


@settings(max_examples=50)
@given(
    st.lists(st.integers(-500, 500), max_size=300),
    st.integers(-500, 500),
    st.integers(-500, 500),
)
def test_matches_bruteforce(values, a, b):
    lo, hi = min(a, b), max(a, b)
    index = FrequencyIndex(values)
    assert index.count(lo, hi) == sum(1 for v in values if lo <= v <= hi)
