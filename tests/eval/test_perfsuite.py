"""Unit tests for the perf suite: report schema + regression gate."""

import copy
import json

import pytest

from repro.errors import BenchmarkError
from repro.eval import perfsuite
from repro.eval.perfsuite import (
    BENCHMARK_NAMES,
    SCHEMA_VERSION,
    compare_reports,
    load_report,
    report_filename,
    run_suite,
    write_report,
)


def _fake_report(**medians):
    """A structurally valid report with the given metric medians."""
    metrics = {}
    for name, median in medians.items():
        unit, direction = perfsuite.METRIC_SPECS.get(name, ("x/s", "higher"))
        metrics[name] = {
            "unit": unit,
            "direction": direction,
            "median": median,
            "p95": median,
            "samples": [median],
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "repro-perfsuite",
        "quick": True,
        "seed": 0,
        "repetitions": 1,
        "benchmarks": list(BENCHMARK_NAMES),
        "scale": perfsuite.QUICK_SCALE.as_dict(),
        "env": {"python": "3.x"},
        "created_unix": 1_700_000_000.0,
        "metrics": metrics,
    }


class TestRunSuite:
    def test_quick_single_benchmark_schema(self):
        # network-ship is the cheapest benchmark; one repetition keeps
        # this a schema test, not a perf test.
        report = run_suite(quick=True, seed=3, repetitions=1, only=("network-ship",))
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["quick"] is True
        assert report["seed"] == 3
        assert report["benchmarks"] == ["network-ship"]
        assert report["scale"] == perfsuite.QUICK_SCALE.as_dict()
        assert "python" in report["env"]
        entry = report["metrics"]["ship.throughput"]
        assert entry["unit"] == "messages/s"
        assert entry["direction"] == "higher"
        assert entry["median"] > 0
        assert len(entry["samples"]) == 1
        # Everything must survive a JSON round-trip (the report IS the
        # interchange format).
        assert json.loads(json.dumps(report)) == report

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown benchmark"):
            run_suite(quick=True, only=("no-such-bench",))

    def test_bad_repetitions_rejected(self):
        with pytest.raises(BenchmarkError, match="repetitions"):
            run_suite(quick=True, repetitions=0)

    def test_every_benchmark_name_registered(self):
        assert set(BENCHMARK_NAMES) == set(perfsuite._BENCHMARKS)

    def test_ndv_benchmark_metrics(self):
        report = run_suite(quick=True, seed=5, repetitions=1, only=("ndv",))
        metrics = report["metrics"]
        assert metrics["ndv.build.throughput"]["median"] > 0
        assert metrics["ndv.union.latency"]["median"] > 0
        # The HBS wire form is deterministic for a given register file,
        # so the ratio is exact, hardware-free, and >1 at the default
        # precision on this workload (docs/SKETCHES.md).
        ratio = metrics["ndv.wire.compression_ratio"]
        assert ratio["direction"] == "higher"
        assert ratio["median"] > 1.0


class TestReportFiles:
    def test_write_and_load_roundtrip(self, tmp_path):
        report = _fake_report(**{"ship.throughput": 100.0})
        target = write_report(report, tmp_path)
        assert target.name == report_filename(report)
        assert target.name.startswith("BENCH_") and target.name.endswith(".json")
        assert load_report(target) == report

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(BenchmarkError, match="does not exist"):
            load_report(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_report(bad)

    def test_load_wrong_schema_version(self, tmp_path):
        report = _fake_report(**{"ship.throughput": 100.0})
        report["schema_version"] = SCHEMA_VERSION + 1
        bad = tmp_path / "old.json"
        bad.write_text(json.dumps(report))
        with pytest.raises(BenchmarkError, match="schema_version"):
            load_report(bad)

    def test_load_missing_metrics(self, tmp_path):
        bad = tmp_path / "empty.json"
        bad.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        with pytest.raises(BenchmarkError, match="metrics"):
            load_report(bad)


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = _fake_report(
            **{"ship.throughput": 100.0, "flush.latency": 0.5}
        )
        assert compare_reports(report, copy.deepcopy(report)) == []

    def test_higher_is_better_regression(self):
        baseline = _fake_report(**{"ship.throughput": 100.0})
        current = _fake_report(**{"ship.throughput": 70.0})
        regressions = compare_reports(current, baseline, tolerance=0.25)
        assert len(regressions) == 1
        assert "ship.throughput" in regressions[0]

    def test_higher_is_better_within_tolerance(self):
        baseline = _fake_report(**{"ship.throughput": 100.0})
        current = _fake_report(**{"ship.throughput": 80.0})
        assert compare_reports(current, baseline, tolerance=0.25) == []

    def test_lower_is_better_regression(self):
        baseline = _fake_report(**{"flush.latency": 1.0})
        current = _fake_report(**{"flush.latency": 1.5})
        regressions = compare_reports(current, baseline, tolerance=0.25)
        assert len(regressions) == 1
        assert "flush.latency" in regressions[0]

    def test_lower_is_better_improvement_passes(self):
        baseline = _fake_report(**{"flush.latency": 1.0})
        current = _fake_report(**{"flush.latency": 0.1})
        assert compare_reports(current, baseline, tolerance=0.25) == []

    def test_huge_improvement_passes(self):
        baseline = _fake_report(**{"ship.throughput": 100.0})
        current = _fake_report(**{"ship.throughput": 100_000.0})
        assert compare_reports(current, baseline, tolerance=0.0) == []

    def test_metric_missing_from_current_run_fails(self):
        baseline = _fake_report(
            **{"ship.throughput": 100.0, "merge.throughput": 50.0}
        )
        current = _fake_report(**{"ship.throughput": 100.0})
        regressions = compare_reports(current, baseline)
        assert len(regressions) == 1
        assert "merge.throughput" in regressions[0]

    def test_suite_subset_skips_unselected_baseline_metrics(self):
        """A --suite/--only run compares only what it measured: a
        baseline metric from a benchmark the current run never selected
        is not a regression."""
        baseline = _fake_report(
            **{"ship.throughput": 100.0, "ingest.stall.max_window": 0.1}
        )
        current = _fake_report(**{"ingest.stall.max_window": 0.1})
        current["benchmarks"] = ["stability"]  # network-ship unselected
        assert compare_reports(current, baseline) == []
        # ...but a metric the selected benchmark should have produced
        # and did not is still a failure.
        partial = _fake_report(**{"stability.ingest.throughput": 10.0})
        partial["benchmarks"] = ["stability"]
        regressions = compare_reports(partial, baseline)
        assert len(regressions) == 1
        assert "ingest.stall.max_window" in regressions[0]

    def test_new_metric_in_current_run_ignored(self):
        baseline = _fake_report(**{"ship.throughput": 100.0})
        current = _fake_report(
            **{"ship.throughput": 100.0, "merge.throughput": 50.0}
        )
        assert compare_reports(current, baseline) == []

    def test_negative_tolerance_rejected(self):
        report = _fake_report(**{"ship.throughput": 100.0})
        with pytest.raises(BenchmarkError, match="tolerance"):
            compare_reports(report, report, tolerance=-0.1)

    def test_malformed_baseline_rejected(self):
        report = _fake_report(**{"ship.throughput": 100.0})
        broken = copy.deepcopy(report)
        broken["metrics"]["ship.throughput"]["median"] = "fast"
        with pytest.raises(BenchmarkError, match="numeric median"):
            compare_reports(report, broken)

    def test_bad_direction_rejected(self):
        report = _fake_report(**{"ship.throughput": 100.0})
        broken = copy.deepcopy(report)
        broken["metrics"]["ship.throughput"]["direction"] = "sideways"
        with pytest.raises(BenchmarkError, match="direction"):
            compare_reports(report, broken)


class TestPercentile:
    def test_single_sample(self):
        assert perfsuite._percentile([4.2], 0.95) == 4.2

    def test_orders_input(self):
        assert perfsuite._percentile([3.0, 1.0, 2.0], 0.0) == 1.0
        assert perfsuite._percentile([3.0, 1.0, 2.0], 1.0) == 3.0


class TestSuitesAndBudgets:
    def test_suites_name_only_registered_benchmarks(self):
        for name, members in perfsuite.SUITES.items():
            assert members, name
            assert set(members) <= set(BENCHMARK_NAMES)
        assert tuple(perfsuite.SUITES["all"]) == tuple(BENCHMARK_NAMES)
        assert "stability" in perfsuite.SUITES

    def test_every_metric_has_a_source_benchmark(self):
        assert set(perfsuite.METRIC_SOURCES) == set(perfsuite.METRIC_SPECS)
        assert set(perfsuite.METRIC_SOURCES.values()) <= set(BENCHMARK_NAMES)

    def test_budget_passes_under_the_ceiling(self):
        budget = perfsuite.STABILITY_STALL_BUDGET_SECONDS
        report = _fake_report(**{"ingest.stall.max_window": budget * 0.5})
        assert perfsuite.check_budgets(report) == []

    def test_budget_fails_on_worst_sample_not_median(self):
        budget = perfsuite.STABILITY_STALL_BUDGET_SECONDS
        report = _fake_report(**{"ingest.stall.max_window": budget * 0.5})
        entry = report["metrics"]["ingest.stall.max_window"]
        entry["samples"] = [budget * 0.5, budget * 1.5]  # median still ok
        violations = perfsuite.check_budgets(report)
        assert len(violations) == 1
        assert "ingest.stall.max_window" in violations[0]

    def test_budget_ignores_reports_without_the_metric(self):
        report = _fake_report(**{"ship.throughput": 100.0})
        assert perfsuite.check_budgets(report) == []
