"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.eval.experiments.common import ExperimentScale


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_every_figure_registered():
    figures = [name for name in EXPERIMENTS if name.startswith("fig")]
    assert sorted(figures) == [f"fig{i}" for i in range(2, 10)]
    assert "ext-multidim" in EXPERIMENTS
    assert "ext-rtree" in EXPERIMENTS


def test_run_single(tmp_path, capsys, monkeypatch):
    # Patch the scale preset so the test stays fast.
    tiny = ExperimentScale(
        domain_length=2**12, num_values=60, total_records=600, queries_per_cell=5
    )
    monkeypatch.setitem(
        __import__("repro.cli", fromlist=["_SCALES"])._SCALES, "small", tiny
    )
    assert main(["run", "fig4", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert (tmp_path / "fig4.txt").exists()


def test_invalid_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_stats_emits_json_snapshot(capsys):
    assert main(["stats"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    counters = snapshot["counters"]
    assert counters["lsm.flush.count"] > 0
    assert counters["lsm.merge.count"] > 0
    assert counters["lsm.bulkload.count"] > 0
    assert 0.0 <= snapshot["derived"]["cache.merged.hit_ratio"] <= 1.0
    assert snapshot["histograms"]["estimator.estimate.seconds"]["count"] > 0


def test_stats_text_format_and_out_file(tmp_path, capsys):
    out = tmp_path / "snap.txt"
    assert main(["stats", "--format", "text", "--out", str(out)]) == 0
    rendered = capsys.readouterr().out
    assert "lsm.flush.count" in rendered
    assert "lsm.flush.count" in out.read_text()


def test_stats_selfcheck_smoke():
    """The CI smoke invocation: `python -m repro.cli stats --selfcheck`
    must validate the snapshot against docs/OBSERVABILITY.md."""
    assert main(["stats", "--selfcheck"]) == 0


def test_faultcheck_converges_and_exits_zero(capsys):
    assert main(["faultcheck", "--records", "64"]) == 0
    out = capsys.readouterr().out
    assert "converged" in out.lower()


def test_faultcheck_invalid_probability_exits_nonzero(capsys):
    assert main(["faultcheck", "--records", "64", "--drop", "1.5"]) == 1
    assert "faultcheck failed" in capsys.readouterr().err


def test_servecheck_converges_and_exits_zero(capsys):
    """The CI invocation: crash-resume must be bit-identical and
    overload must shed typed rejections without deadlock."""
    assert main(["servecheck", "--records", "192"]) == 0
    out = capsys.readouterr().out
    assert "converged" in out
    assert "replayed" in out


def test_servecheck_vacuous_resume_exits_nonzero(capsys):
    # An empty feed replays nothing, which the harness must flag as a
    # vacuous (failed) resume leg rather than a silent pass.
    assert main(["servecheck", "--records", "0"]) == 1
    assert "vacuous resume" in capsys.readouterr().out


def test_racecheck_quick_converges_and_exits_zero(capsys):
    """The CI invocation: concurrent maintenance must end bit-identical
    to the synchronous baseline for every quick-sweep seed."""
    assert main(["racecheck", "--quick", "--records", "192"]) == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out
    assert "racecheck seeds=[0, 1]" in out


def test_racecheck_explicit_seeds_override_the_sweep(capsys):
    assert main(["racecheck", "--seed", "3", "--records", "192"]) == 0
    assert "racecheck seeds=[3]" in capsys.readouterr().out


def test_racecheck_paced_converges_and_exits_zero(capsys):
    """Pacing must be image-neutral: the same sync-vs-concurrent oracle
    with a merge pacer installed on every run (baseline included)."""
    assert main(["racecheck", "--seed", "0", "--records", "192", "--paced"]) == 0
    assert "bit-identical" in capsys.readouterr().out


# `--only network-ship --repetitions 1` keeps the bench CLI tests to a
# few milliseconds of measured work; the full quick suite runs in CI's
# bench-smoke job, not here.
_BENCH_FAST = ["bench", "--quick", "--repetitions", "1", "--only", "network-ship"]


def test_bench_writes_schema_versioned_report(tmp_path, capsys):
    assert main([*_BENCH_FAST, "--out", str(tmp_path)]) == 0
    reports = list(tmp_path.glob("BENCH_*.json"))
    assert len(reports) == 1
    payload = json.loads(reports[0].read_text())
    assert payload["schema_version"] == 1
    assert payload["metrics"]["ship.throughput"]["median"] > 0
    out = capsys.readouterr().out
    assert "ship.throughput" in out


def test_bench_no_report_writes_nothing(tmp_path):
    assert main([*_BENCH_FAST, "--no-report", "--out", str(tmp_path)]) == 0
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_bench_compare_pass_and_regression(tmp_path, capsys):
    out_dir = tmp_path / "reports"
    assert main([*_BENCH_FAST, "--out", str(out_dir)]) == 0
    report_path = next(out_dir.glob("BENCH_*.json"))
    baseline = json.loads(report_path.read_text())

    # Trivially slow baseline: the fresh run must pass the gate.
    easy = tmp_path / "easy.json"
    relaxed = json.loads(report_path.read_text())
    relaxed["metrics"]["ship.throughput"]["median"] = 1e-6
    easy.write_text(json.dumps(relaxed))
    assert (
        main([*_BENCH_FAST, "--no-report", "--compare", str(easy)]) == 0
    )
    assert "bench compare: ok" in capsys.readouterr().out

    # Impossible baseline: the fresh run must regress -> exit 1.
    hard = tmp_path / "hard.json"
    baseline["metrics"]["ship.throughput"]["median"] = 1e15
    hard.write_text(json.dumps(baseline))
    assert (
        main([*_BENCH_FAST, "--no-report", "--compare", str(hard)]) == 1
    )
    assert "REGRESSION" in capsys.readouterr().out


def test_bench_compare_malformed_baseline_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    assert main([*_BENCH_FAST, "--no-report", "--compare", str(bad)]) == 2
    assert "bench compare failed" in capsys.readouterr().err


def test_bench_compare_missing_baseline_exits_two(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main([*_BENCH_FAST, "--no-report", "--compare", str(missing)]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_bench_unknown_benchmark_exits_two(capsys):
    assert main(["bench", "--quick", "--only", "nope"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_bench_unknown_suite_exits_two(capsys):
    assert main(["bench", "--quick", "--suite", "nope"]) == 2
    assert "unknown suite" in capsys.readouterr().err


def test_bench_suite_and_only_are_mutually_exclusive(capsys):
    assert (
        main(
            [
                "bench",
                "--quick",
                "--suite",
                "stability",
                "--only",
                "network-ship",
            ]
        )
        == 2
    )
    assert "mutually exclusive" in capsys.readouterr().err
