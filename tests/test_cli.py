"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.eval.experiments.common import ExperimentScale


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_every_figure_registered():
    figures = [name for name in EXPERIMENTS if name.startswith("fig")]
    assert sorted(figures) == [f"fig{i}" for i in range(2, 10)]
    assert "ext-multidim" in EXPERIMENTS
    assert "ext-rtree" in EXPERIMENTS


def test_run_single(tmp_path, capsys, monkeypatch):
    # Patch the scale preset so the test stays fast.
    tiny = ExperimentScale(
        domain_length=2**12, num_values=60, total_records=600, queries_per_cell=5
    )
    monkeypatch.setitem(
        __import__("repro.cli", fromlist=["_SCALES"])._SCALES, "small", tiny
    )
    assert main(["run", "fig4", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert (tmp_path / "fig4.txt").exists()


def test_invalid_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_stats_emits_json_snapshot(capsys):
    assert main(["stats"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    counters = snapshot["counters"]
    assert counters["lsm.flush.count"] > 0
    assert counters["lsm.merge.count"] > 0
    assert counters["lsm.bulkload.count"] > 0
    assert 0.0 <= snapshot["derived"]["cache.merged.hit_ratio"] <= 1.0
    assert snapshot["histograms"]["estimator.estimate.seconds"]["count"] > 0


def test_stats_text_format_and_out_file(tmp_path, capsys):
    out = tmp_path / "snap.txt"
    assert main(["stats", "--format", "text", "--out", str(out)]) == 0
    rendered = capsys.readouterr().out
    assert "lsm.flush.count" in rendered
    assert "lsm.flush.count" in out.read_text()


def test_stats_selfcheck_smoke():
    """The CI smoke invocation: `python -m repro.cli stats --selfcheck`
    must validate the snapshot against docs/OBSERVABILITY.md."""
    assert main(["stats", "--selfcheck"]) == 0
