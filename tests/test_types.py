"""Tests for fixed-width types and domains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DomainError
from repro.types import Domain, IntType


class TestIntType:
    def test_widths(self):
        assert IntType.INT8.bits == 8
        assert IntType.INT64.bits == 64

    def test_bounds(self):
        assert IntType.INT8.min_value == -128
        assert IntType.INT8.max_value == 127
        assert IntType.INT32.max_value == 2**31 - 1

    def test_validate(self):
        assert IntType.INT8.validate(127) == 127
        with pytest.raises(DomainError):
            IntType.INT8.validate(128)


class TestDomain:
    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            Domain(5, 4)

    def test_length_and_padding(self):
        d = Domain(0, 999)
        assert d.length == 1000
        assert d.padded_length == 1024
        assert d.levels == 10

    def test_exact_power_of_two_not_padded(self):
        d = Domain(0, 1023)
        assert d.padded_length == 1024

    def test_singleton_domain(self):
        d = Domain(7, 7)
        assert d.length == 1
        assert d.padded_length == 1
        assert d.levels == 0

    def test_of_type(self):
        d = Domain.of_type(IntType.INT16)
        assert d.length == 65536
        assert d.padded_length == 65536

    def test_position_roundtrip(self):
        d = Domain(-10, 10)
        assert d.position(-10) == 0
        assert d.position(10) == 20
        assert d.value_at(0) == -10
        with pytest.raises(DomainError):
            d.position(11)

    def test_position_in_padded_tail(self):
        d = Domain(0, 2)  # padded to 4
        assert d.value_at(3) == 3
        with pytest.raises(DomainError):
            d.value_at(4)

    def test_contains(self):
        d = Domain(0, 5)
        assert 0 in d and 5 in d
        assert 6 not in d
        assert "x" not in d

    def test_clamp(self):
        d = Domain(0, 5)
        assert d.clamp(-3) == 0
        assert d.clamp(9) == 5
        assert d.clamp(2) == 2

    def test_intersect(self):
        d = Domain(0, 10)
        assert d.intersect(-5, 5) == (0, 5)
        assert d.intersect(3, 20) == (3, 10)
        assert d.intersect(11, 20) is None

    @given(st.integers(-10**9, 10**9), st.integers(0, 10**6))
    def test_padded_length_is_power_of_two(self, lo, width):
        d = Domain(lo, lo + width)
        p = d.padded_length
        assert p >= d.length
        assert p & (p - 1) == 0
        assert p < 2 * d.length
