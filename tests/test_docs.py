"""Documentation sanity: links resolve, the metrics contract is real.

The observability PR's bargain is that docs are load-bearing
(``repro stats --selfcheck`` validates emitted metrics against
``docs/OBSERVABILITY.md``), so the docs themselves get the same
treatment: every relative link in the README and under ``docs/`` must
resolve, and the contract tables must actually declare the core metric
names.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = [REPO_ROOT / "README.md"] + sorted(
    (REPO_ROOT / "docs").glob("*.md")
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def relative_links(path: Path) -> list[str]:
    """All relative (non-URL, non-anchor) markdown link targets."""
    links = []
    for target in _LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    broken = []
    for target in relative_links(doc):
        resolved = (doc.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name} has broken relative links: {broken}"


def test_docs_exist_and_are_cross_linked():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "OBSERVABILITY.md").is_file()
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/OBSERVABILITY.md" in readme


def test_observability_contract_declares_core_metrics():
    from repro.obs.selfcheck import (
        EXPECTED_COUNTERS,
        EXPECTED_HISTOGRAMS,
        documented_metric_names,
    )

    documented = documented_metric_names(REPO_ROOT / "docs" / "OBSERVABILITY.md")
    assert documented is not None
    missing = [
        name
        for name in (*EXPECTED_COUNTERS, *EXPECTED_HISTOGRAMS)
        if name not in documented
    ]
    assert not missing, f"OBSERVABILITY.md is missing core metrics: {missing}"


def test_module_docstrings_cite_the_paper():
    """The satellite fix: cache.py and network.py cite their paper
    sections the way lsm/events.py does."""
    for module, fragment in (
        ("src/repro/core/cache.py", "Section 3.5"),
        ("src/repro/core/cache.py", "Algorithm 2"),
        ("src/repro/cluster/network.py", "Section 3.4"),
        ("src/repro/lsm/events.py", "paper"),
    ):
        text = (REPO_ROOT / module).read_text()
        docstring = text.split('"""')[1]
        assert fragment in docstring, f"{module} docstring lacks {fragment!r}"
