"""Span/traced semantics: timing, error counting, disabled mode."""

import pytest

from repro.obs.registry import MetricsRegistry, NoopRegistry
from repro.obs.tracing import span, traced


def test_span_records_into_seconds_histogram():
    registry = MetricsRegistry()
    with span("work", registry):
        pass
    histogram = registry.histogram("work.seconds")
    assert histogram.count == 1
    assert histogram.sum >= 0.0


def test_span_on_exception_counts_error_and_still_times():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        with span("work", registry):
            raise ValueError("boom")
    assert registry.counter("work.errors").value == 1
    assert registry.histogram("work.seconds").count == 1


def test_span_disabled_registry_records_nothing():
    registry = NoopRegistry()
    with span("work", registry):
        pass
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_traced_decorator_wraps_and_records():
    registry = MetricsRegistry()

    @traced("func", registry)
    def add(a, b):
        return a + b

    assert add(2, 3) == 5
    assert add(1, 1) == 2
    assert add.__name__ == "add"
    assert registry.histogram("func.seconds").count == 2


def test_traced_follows_global_registry_per_call():
    from repro.obs.registry import use_registry

    @traced("func")
    def noop():
        return None

    first, second = MetricsRegistry(), MetricsRegistry()
    with use_registry(first):
        noop()
    with use_registry(second):
        noop()
        noop()
    assert first.histogram("func.seconds").count == 1
    assert second.histogram("func.seconds").count == 2
