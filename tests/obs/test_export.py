"""Exporter round-trips: JSON, text, file output."""

import json

import pytest

from repro.obs.export import render_json, render_text, write_snapshot
from repro.obs.registry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("lsm.flush.count").inc(3)
    registry.gauge("cache.merged.size").set(2)
    registry.histogram("lsm.flush.seconds").observe(0.004)
    return registry


def test_json_round_trip():
    registry = populated_registry()
    loaded = json.loads(render_json(registry))
    assert loaded == registry.snapshot()
    # A loaded snapshot renders identically to the live registry.
    assert render_json(loaded) == render_json(registry)


def test_text_rendering_lists_every_metric():
    text = render_text(populated_registry())
    assert "lsm.flush.count" in text
    assert "cache.merged.size" in text
    assert "lsm.flush.seconds" in text
    assert "count=1" in text


def test_text_rendering_includes_extra_sections():
    snapshot = populated_registry().snapshot()
    snapshot["derived"] = {"cache.merged.hit_ratio": 0.9}
    text = render_text(snapshot)
    assert "derived:" in text
    assert "cache.merged.hit_ratio" in text


def test_write_snapshot_json_and_text(tmp_path):
    registry = populated_registry()
    json_path = write_snapshot(registry, tmp_path / "snap.json")
    assert json.loads(json_path.read_text()) == registry.snapshot()
    text_path = write_snapshot(registry, tmp_path / "snap.txt", fmt="text")
    assert "lsm.flush.count" in text_path.read_text()
    with pytest.raises(ValueError):
        write_snapshot(registry, tmp_path / "snap.xml", fmt="xml")


def test_empty_registry_renders_cleanly():
    registry = MetricsRegistry()
    assert json.loads(render_json(registry)) == registry.snapshot()
    assert render_text(registry) == ""
