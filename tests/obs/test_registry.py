"""Registry semantics: counters, gauges, histograms, no-op mode."""

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NOOP_REGISTRY,
    NoopRegistry,
    get_registry,
    sanitize_segment,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("test.count")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("test.count")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.counter("a.b") is not registry.counter("a.c")


class TestGauge:
    def test_set_and_adjust(self):
        gauge = MetricsRegistry().gauge("test.size")
        gauge.set(10)
        assert gauge.value == 10.0
        gauge.inc(-3)
        assert gauge.value == 7.0


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        histogram = Histogram("test.seconds", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)
        assert histogram.mean == pytest.approx(555.5 / 4)
        snap = histogram.snapshot()
        assert snap["min"] == 0.5
        assert snap["max"] == 500.0
        assert snap["buckets"] == {"1": 1, "10": 1, "100": 1, "+inf": 1}

    def test_percentiles_interpolate_and_clamp(self):
        histogram = Histogram("test.seconds", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            histogram.observe(1.5)
        # All mass in the (1, 2] bucket: every quantile stays there.
        assert 1.0 <= histogram.percentile(0.5) <= 2.0
        assert 1.0 <= histogram.percentile(0.99) <= 2.0
        # Overflow observations report the exact maximum.
        histogram.observe(1000.0)
        assert histogram.percentile(1.0) == 1000.0

    def test_empty_histogram_is_quiet(self):
        histogram = Histogram("test.seconds")
        assert histogram.percentile(0.99) == 0.0
        snap = histogram.snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_rejects_bad_buckets_and_quantiles(self):
        with pytest.raises(ValueError):
            Histogram("test.seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("test.seconds", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("test.seconds").percentile(1.5)

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-7)
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0


class TestRegistry:
    def test_rejects_illegal_names(self):
        registry = MetricsRegistry()
        for bad in ("", "UPPER.case", "spaced name", ".leading", "trailing."):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_snapshot_shape_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(2)
        registry.gauge("a.size").set(3)
        registry.histogram("a.seconds").observe(0.01)
        snap = registry.snapshot()
        assert snap["counters"] == {"a.count": 2}
        assert snap["gauges"] == {"a.size": 3.0}
        assert snap["histograms"]["a.seconds"]["count"] == 1
        assert registry.metric_names() == ["a.count", "a.seconds", "a.size"]
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_sanitize_segment(self):
        assert sanitize_segment("tweets.value_idx") == "tweets.value_idx"
        assert sanitize_segment("My Index!") == "my_index"
        assert sanitize_segment("...") == "unnamed"


class TestNoopRegistry:
    def test_instruments_do_nothing_and_are_shared(self):
        registry = NoopRegistry()
        counter = registry.counter("x.count")
        counter.inc(100)
        assert counter.value == 0
        assert counter is registry.counter("y.count")
        gauge = registry.gauge("x.size")
        gauge.set(5)
        assert gauge.value == 0.0
        histogram = registry.histogram("x.seconds")
        histogram.observe(1.0)
        assert histogram.count == 0

    def test_disabled_and_empty_snapshot(self):
        assert NOOP_REGISTRY.enabled is False
        assert NOOP_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestGlobalRegistry:
    def test_set_returns_previous(self):
        original = get_registry()
        replacement = MetricsRegistry()
        try:
            assert set_registry(replacement) is original
            assert get_registry() is replacement
        finally:
            set_registry(original)

    def test_use_registry_restores_even_on_error(self):
        original = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()) as scoped:
                assert get_registry() is scoped
                raise RuntimeError("boom")
        assert get_registry() is original
