"""End-to-end: real flushes/merges produce the documented metrics."""

from pathlib import Path

from repro.core.config import StatisticsConfig
from repro.core.manager import StatisticsManager
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.obs.registry import (
    MetricsRegistry,
    NOOP_REGISTRY,
    use_registry,
)
from repro.obs.selfcheck import (
    documented_metric_names,
    is_documented,
    run_scripted_ingest,
    selfcheck,
)
from repro.synopses.base import SynopsisType
from repro.types import Domain

DOCS = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"


def ingest(registry) -> None:
    """One bulkload, several flushes, at least one merge, estimates."""
    with use_registry(registry):
        dataset = Dataset(
            "t",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 2**16 - 1),
            indexes=[IndexSpec("v_idx", "v", Domain(0, 255))],
            memtable_capacity=64,
            merge_policy=ConstantMergePolicy(max_components=2),
        )
        stats = StatisticsManager(
            StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=16), registry
        )
        stats.attach(dataset)
        dataset.bulkload({"id": pk, "v": pk % 256} for pk in range(128))
        for pk in range(128, 384):
            dataset.insert({"id": pk, "v": pk % 256})
        dataset.flush()
        for _ in range(4):
            stats.estimate(dataset, "v_idx", 10, 99)


class TestFlushAndMergeMetrics:
    def test_lifecycle_counters_are_plausible(self):
        registry = MetricsRegistry()
        ingest(registry)
        counters = registry.snapshot()["counters"]
        # 128 bulkloaded + 256 inserted, on primary + one secondary.
        assert counters["lsm.bulkload.count"] == 2
        assert counters["lsm.flush.count"] >= 4
        assert counters["lsm.merge.count"] >= 1
        assert counters["lsm.records.matter"] >= 2 * 384
        assert counters["lsm.observer.failures"] == 0
        # The collector tapped every component write the bus announced.
        assert (
            counters["collector.component_writes"]
            == counters["lsm.events.component_writes"]
        )
        assert counters["collector.synopses.published"] == (
            2 * counters["collector.component_writes"]
        )
        assert counters["estimator.estimate.count"] == 4
        assert counters["cache.merged.hit"] + counters["cache.merged.miss"] == 4

    def test_latency_histograms_are_populated(self):
        registry = MetricsRegistry()
        ingest(registry)
        histograms = registry.snapshot()["histograms"]
        for name in (
            "lsm.flush.seconds",
            "lsm.merge.seconds",
            "lsm.bulkload.seconds",
            "synopsis.build.seconds",
            "estimator.estimate.seconds",
            "estimator.estimate.seconds.equi_width",
        ):
            assert histograms[name]["count"] > 0, name
            assert histograms[name]["sum"] >= 0.0
            assert histograms[name]["max"] >= histograms[name]["min"]

    def test_component_gauges_track_live_components(self):
        registry = MetricsRegistry()
        ingest(registry)
        gauges = registry.snapshot()["gauges"]
        # Constant policy caps at 2 components; the merge that fires on
        # overflow leaves exactly one.
        assert 1 <= gauges["lsm.components.t.primary"] <= 2
        assert 1 <= gauges["lsm.components.t.v_idx"] <= 2

    def test_every_emitted_metric_is_documented(self):
        registry = MetricsRegistry()
        ingest(registry)
        documented = documented_metric_names(DOCS)
        assert documented, "docs/OBSERVABILITY.md must declare metric names"
        snapshot = registry.snapshot()
        emitted = (
            list(snapshot["counters"])
            + list(snapshot["gauges"])
            + list(snapshot["histograms"])
        )
        undocumented = [
            name for name in emitted if not is_documented(name, documented)
        ]
        assert not undocumented, (
            f"metrics emitted but missing from docs/OBSERVABILITY.md: "
            f"{undocumented}"
        )


class TestNoopMode:
    def test_ingestion_works_and_records_nothing(self):
        ingest(NOOP_REGISTRY)
        assert NOOP_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_legacy_counters_survive_noop_registry(self):
        with use_registry(NOOP_REGISTRY):
            dataset = Dataset(
                "t",
                SimulatedDisk(),
                primary_key="id",
                primary_domain=Domain(0, 1023),
                memtable_capacity=16,
            )
            for pk in range(32):
                dataset.insert({"id": pk})
            dataset.flush()
            assert dataset.primary.flush_count >= 2


class TestSelfcheck:
    def test_scripted_ingest_passes_selfcheck(self):
        problems = selfcheck(run_scripted_ingest(), docs_path=DOCS)
        assert problems == []

    def test_selfcheck_flags_missing_and_undocumented(self):
        snapshot = run_scripted_ingest()
        snapshot["counters"].pop("lsm.flush.count")
        snapshot["counters"]["made.up.metric"] = 1
        problems = selfcheck(snapshot, docs_path=DOCS)
        assert any("lsm.flush.count" in p for p in problems)
        assert any("made.up.metric" in p for p in problems)

    def test_selfcheck_reports_missing_docs(self):
        problems = selfcheck(
            run_scripted_ingest(), docs_path=Path("/nonexistent/OBS.md")
        )
        assert any("not found" in p for p in problems)

    def test_placeholder_matching(self):
        documented = ["lsm.components.<index>", "lsm.flush.count"]
        assert is_documented("lsm.components.t.primary", documented)
        assert is_documented("lsm.flush.count", documented)
        assert not is_documented("lsm.flushes.count", documented)
        assert not is_documented("lsm.components", documented)


class TestClusterCounterAgreement:
    def test_master_legacy_counter_matches_metric(self):
        """``stats_messages_received`` and ``cluster.stats.messages``
        count the same thing (publishes *and* retracts); they drifted
        apart before the semantics were pinned down."""
        from repro.cluster.cluster import LSMCluster

        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = LSMCluster(
                num_nodes=2,
                partitions_per_node=1,
                stats_config=StatisticsConfig(
                    SynopsisType.EQUI_WIDTH, budget=16
                ),
            )
            cluster.create_dataset(
                "t",
                primary_key="id",
                primary_domain=Domain(0, 2**16 - 1),
                memtable_capacity=16,
                merge_policy_factory=lambda: ConstantMergePolicy(
                    max_components=2
                ),
            )
            for pk in range(200):
                cluster.insert("t", {"id": pk})
            cluster.flush_all("t")
        counters = registry.snapshot()["counters"]
        # The ingest must have produced retract traffic (merges ran),
        # otherwise the regression this guards against cannot show.
        assert counters["cluster.retractions.sent"] > 0
        assert (
            cluster.master.stats_messages_received
            == counters["cluster.stats.messages"]
        )
