"""Tests for predicates, the executor and the optimizer."""

import pytest

from repro.core import StatisticsConfig, StatisticsManager
from repro.errors import QueryError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.query import (
    AccessMethod,
    CostModel,
    JoinMethod,
    QueryExecutor,
    QueryOptimizer,
    RangePredicate,
)
from repro.synopses import SynopsisType
from repro.types import Domain

VALUE_DOMAIN = Domain(0, 999)


def _setup(num_records=500, memtable_capacity=64, domain=VALUE_DOMAIN, bulkload=False):
    dataset = Dataset(
        "orders",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", domain)],
        memtable_capacity=memtable_capacity,
    )
    manager = StatisticsManager(
        StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=128)
    )
    manager.attach(dataset)
    docs = ({"id": pk, "value": pk % domain.length} for pk in range(num_records))
    if bulkload:
        dataset.bulkload(docs)
    else:
        for doc in docs:
            dataset.insert(doc)
        dataset.flush()
    return dataset, manager


def _large_setup():
    """20k records, one component per index: realistic probe costs."""
    return _setup(num_records=20_000, domain=Domain(0, 9999), bulkload=True)


class TestPredicate:
    def test_validation(self):
        with pytest.raises(QueryError):
            RangePredicate("value", 10, 9)

    def test_matches(self):
        predicate = RangePredicate("value", 10, 20)
        assert predicate.matches({"value": 15})
        assert not predicate.matches({"value": 21})
        assert not predicate.matches({"other": 15})
        assert predicate.length == 11


class TestExecutor:
    def test_both_paths_agree(self):
        dataset, _manager = _setup()
        executor = QueryExecutor(dataset)
        predicate = RangePredicate("value", 100, 150)
        probe = executor.execute(predicate, AccessMethod.INDEX_PROBE)
        scan = executor.execute(predicate, AccessMethod.FULL_SCAN)
        assert probe.cardinality == scan.cardinality == 51
        probe_ids = sorted(r["id"] for r in probe.records)
        scan_ids = sorted(r["id"] for r in scan.records)
        assert probe_ids == scan_ids

    def test_selective_probe_reads_less(self):
        dataset, _manager = _large_setup()
        executor = QueryExecutor(dataset)
        predicate = RangePredicate("value", 5, 6)
        probe = executor.execute(predicate, AccessMethod.INDEX_PROBE)
        scan = executor.execute(predicate, AccessMethod.FULL_SCAN)
        assert probe.io.pages_read < scan.io.pages_read

    def test_probe_after_deletes(self):
        dataset, _manager = _setup()
        for pk in range(0, 100, 2):
            dataset.delete(pk)
        dataset.flush()
        executor = QueryExecutor(dataset)
        result = executor.execute(
            RangePredicate("value", 0, 99), AccessMethod.INDEX_PROBE
        )
        assert result.cardinality == 50

    def test_unknown_field(self):
        dataset, _manager = _setup(num_records=10)
        executor = QueryExecutor(dataset)
        with pytest.raises(QueryError):
            executor.execute(
                RangePredicate("missing", 0, 1), AccessMethod.INDEX_PROBE
            )


class TestOptimizer:
    def test_selective_query_uses_index(self):
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        plan = optimizer.plan_range_query(
            dataset, RangePredicate("value", 5, 6), total_records=20_000
        )
        assert plan.method is AccessMethod.INDEX_PROBE
        assert plan.estimated_cardinality < 20

    def test_wide_query_skips_index(self):
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        plan = optimizer.plan_range_query(
            dataset, RangePredicate("value", 0, 9999), total_records=20_000
        )
        assert plan.method is AccessMethod.FULL_SCAN
        assert plan.estimated_cardinality == pytest.approx(20_000, rel=0.1)

    def test_join_planning_crossover(self):
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        selective = optimizer.plan_join(
            dataset,
            RangePredicate("value", 7, 7),
            outer_total=20_000,
            inner_total=100_000,
        )
        assert selective.method is JoinMethod.INDEXED_NESTED_LOOP
        wide = optimizer.plan_join(
            dataset,
            RangePredicate("value", 0, 9999),
            outer_total=20_000,
            inner_total=100_000,
        )
        assert wide.method is JoinMethod.HASH_JOIN

    def test_cost_model_shapes(self):
        model = CostModel()
        assert model.index_probe_cost(0) == 0
        assert model.index_probe_cost(10) > model.index_probe_cost(1)
        assert model.full_scan_cost(10) >= 1.0
        assert model.hash_join_cost(1000, 1000) > model.full_scan_cost(1000)

    def test_optimizer_without_index(self):
        dataset, manager = _setup(num_records=10)
        optimizer = QueryOptimizer(manager.estimator)
        with pytest.raises(QueryError):
            optimizer.plan_range_query(
                dataset, RangePredicate("missing", 0, 1), total_records=10
            )

    def test_plan_matches_execution_winner(self):
        """The estimate-driven choice must actually be the cheaper path."""
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        executor = QueryExecutor(dataset)
        for lo, hi in [(5, 6), (0, 9999)]:
            predicate = RangePredicate("value", lo, hi)
            plan = optimizer.plan_range_query(dataset, predicate, 20_000)
            probe = executor.execute(predicate, AccessMethod.INDEX_PROBE)
            scan = executor.execute(predicate, AccessMethod.FULL_SCAN)
            probe_cost = (
                probe.io.random_reads * 10 + probe.io.sequential_reads
            )
            scan_cost = scan.io.random_reads * 10 + scan.io.sequential_reads
            cheaper = (
                AccessMethod.INDEX_PROBE
                if probe_cost <= scan_cost
                else AccessMethod.FULL_SCAN
            )
            assert plan.method is cheaper
