"""Tests for predicates, the executor and the optimizer."""

import pytest

from repro.core import StatisticsConfig, StatisticsManager
from repro.errors import QueryError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.query import (
    AccessMethod,
    CostModel,
    JoinMethod,
    QueryExecutor,
    QueryOptimizer,
    RangePredicate,
)
from repro.synopses import SynopsisType
from repro.types import Domain

VALUE_DOMAIN = Domain(0, 999)


def _setup(num_records=500, memtable_capacity=64, domain=VALUE_DOMAIN, bulkload=False):
    dataset = Dataset(
        "orders",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", domain)],
        memtable_capacity=memtable_capacity,
    )
    manager = StatisticsManager(
        StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=128)
    )
    manager.attach(dataset)
    docs = ({"id": pk, "value": pk % domain.length} for pk in range(num_records))
    if bulkload:
        dataset.bulkload(docs)
    else:
        for doc in docs:
            dataset.insert(doc)
        dataset.flush()
    return dataset, manager


def _large_setup():
    """20k records, one component per index: realistic probe costs."""
    return _setup(num_records=20_000, domain=Domain(0, 9999), bulkload=True)


class TestPredicate:
    def test_validation(self):
        with pytest.raises(QueryError):
            RangePredicate("value", 10, 9)

    def test_matches(self):
        predicate = RangePredicate("value", 10, 20)
        assert predicate.matches({"value": 15})
        assert not predicate.matches({"value": 21})
        assert not predicate.matches({"other": 15})
        assert predicate.length == 11


class TestExecutor:
    def test_both_paths_agree(self):
        dataset, _manager = _setup()
        executor = QueryExecutor(dataset)
        predicate = RangePredicate("value", 100, 150)
        probe = executor.execute(predicate, AccessMethod.INDEX_PROBE)
        scan = executor.execute(predicate, AccessMethod.FULL_SCAN)
        assert probe.cardinality == scan.cardinality == 51
        probe_ids = sorted(r["id"] for r in probe.records)
        scan_ids = sorted(r["id"] for r in scan.records)
        assert probe_ids == scan_ids

    def test_selective_probe_reads_less(self):
        dataset, _manager = _large_setup()
        executor = QueryExecutor(dataset)
        predicate = RangePredicate("value", 5, 6)
        probe = executor.execute(predicate, AccessMethod.INDEX_PROBE)
        scan = executor.execute(predicate, AccessMethod.FULL_SCAN)
        assert probe.io.pages_read < scan.io.pages_read

    def test_probe_after_deletes(self):
        dataset, _manager = _setup()
        for pk in range(0, 100, 2):
            dataset.delete(pk)
        dataset.flush()
        executor = QueryExecutor(dataset)
        result = executor.execute(
            RangePredicate("value", 0, 99), AccessMethod.INDEX_PROBE
        )
        assert result.cardinality == 50

    def test_unknown_field(self):
        dataset, _manager = _setup(num_records=10)
        executor = QueryExecutor(dataset)
        with pytest.raises(QueryError):
            executor.execute(
                RangePredicate("missing", 0, 1), AccessMethod.INDEX_PROBE
            )


class TestOptimizer:
    def test_selective_query_uses_index(self):
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        plan = optimizer.plan_range_query(
            dataset, RangePredicate("value", 5, 6), total_records=20_000
        )
        assert plan.method is AccessMethod.INDEX_PROBE
        assert plan.estimated_cardinality < 20

    def test_wide_query_skips_index(self):
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        plan = optimizer.plan_range_query(
            dataset, RangePredicate("value", 0, 9999), total_records=20_000
        )
        assert plan.method is AccessMethod.FULL_SCAN
        assert plan.estimated_cardinality == pytest.approx(20_000, rel=0.1)

    def test_join_planning_crossover(self):
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        selective = optimizer.plan_join(
            dataset,
            RangePredicate("value", 7, 7),
            outer_total=20_000,
            inner_total=100_000,
        )
        assert selective.method is JoinMethod.INDEXED_NESTED_LOOP
        wide = optimizer.plan_join(
            dataset,
            RangePredicate("value", 0, 9999),
            outer_total=20_000,
            inner_total=100_000,
        )
        assert wide.method is JoinMethod.HASH_JOIN

    def test_cost_model_shapes(self):
        model = CostModel()
        assert model.index_probe_cost(0) == 0
        assert model.index_probe_cost(10) > model.index_probe_cost(1)
        assert model.full_scan_cost(10) >= 1.0
        assert model.hash_join_cost(1000, 1000) > model.full_scan_cost(1000)

    def test_optimizer_without_index(self):
        dataset, manager = _setup(num_records=10)
        optimizer = QueryOptimizer(manager.estimator)
        with pytest.raises(QueryError):
            optimizer.plan_range_query(
                dataset, RangePredicate("missing", 0, 1), total_records=10
            )

    def test_plan_matches_execution_winner(self):
        """The estimate-driven choice must actually be the cheaper path."""
        dataset, manager = _large_setup()
        optimizer = QueryOptimizer(manager.estimator)
        executor = QueryExecutor(dataset)
        for lo, hi in [(5, 6), (0, 9999)]:
            predicate = RangePredicate("value", lo, hi)
            plan = optimizer.plan_range_query(dataset, predicate, 20_000)
            probe = executor.execute(predicate, AccessMethod.INDEX_PROBE)
            scan = executor.execute(predicate, AccessMethod.FULL_SCAN)
            probe_cost = (
                probe.io.random_reads * 10 + probe.io.sequential_reads
            )
            scan_cost = scan.io.random_reads * 10 + scan.io.sequential_reads
            cheaper = (
                AccessMethod.INDEX_PROBE
                if probe_cost <= scan_cost
                else AccessMethod.FULL_SCAN
            )
            assert plan.method is cheaper


class TestJoinCardinality:
    """The NDV sketch lane's optimizer consumer (docs/SKETCHES.md)."""

    @staticmethod
    def _ndv_setup(num_records, distinct_values, name="orders"):
        dataset = Dataset(
            name,
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 10**6),
            indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
            memtable_capacity=256,
        )
        manager = StatisticsManager(
            StatisticsConfig(
                SynopsisType.EQUI_WIDTH,
                budget=128,
                ndv_enabled=True,
                ndv_precision=9,
            )
        )
        manager.attach(dataset)
        dataset.bulkload(
            {"id": pk, "value": pk % distinct_values}
            for pk in range(num_records)
        )
        return dataset, manager

    def test_estimate_ndv_on_join_key(self):
        dataset, manager = self._ndv_setup(8_000, distinct_values=250)
        optimizer = QueryOptimizer(manager.estimator)
        sigma = 1.04 / 512**0.5
        assert optimizer.estimate_ndv(dataset, "value") == pytest.approx(
            250, rel=3 * sigma
        )
        assert optimizer.estimate_ndv(dataset, "id") == pytest.approx(
            8_000, rel=3 * sigma
        )

    @staticmethod
    def _two_dataset_setup():
        """Both join sides registered with ONE manager (one catalog)."""
        manager = StatisticsManager(
            StatisticsConfig(
                SynopsisType.EQUI_WIDTH,
                budget=128,
                ndv_enabled=True,
                ndv_precision=9,
            )
        )
        datasets = {}
        for name, records, distinct in (
            ("orders", 6_000, 100),
            ("items", 9_000, 400),
        ):
            dataset = Dataset(
                name,
                SimulatedDisk(),
                primary_key="id",
                primary_domain=Domain(0, 10**6),
                indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
                memtable_capacity=256,
            )
            manager.attach(dataset)
            dataset.bulkload(
                {"id": pk, "value": pk % distinct} for pk in range(records)
            )
            datasets[name] = dataset
        return datasets["orders"], datasets["items"], manager

    def test_join_cardinality_uses_max_ndv(self):
        outer, inner, manager = self._two_dataset_setup()
        optimizer = QueryOptimizer(manager.estimator)
        plan = optimizer.plan_join_on(
            outer, "value", 6_000, inner, 9_000, inner_field="value"
        )
        formula = 6_000 * 9_000 / max(plan.outer_ndv, plan.inner_ndv)
        assert plan.estimated_join_cardinality == pytest.approx(formula)
        assert plan.outer_ndv == pytest.approx(100, rel=0.2)
        assert plan.inner_ndv == pytest.approx(400, rel=0.2)
        # max(100, 400) in the denominator: ~135k joined rows.
        assert plan.estimated_join_cardinality == pytest.approx(
            135_000, rel=0.25
        )

    def test_join_method_crossover(self):
        dataset, manager = self._ndv_setup(4_000, 200)
        optimizer = QueryOptimizer(manager.estimator)
        # One probe costs 30 sequential-page equivalents vs ~63 pages
        # to scan both sides: INLJ only wins for a tiny outer.
        small = optimizer.plan_join_on(dataset, "value", 2, dataset, 4_000)
        assert small.method is JoinMethod.INDEXED_NESTED_LOOP
        large = optimizer.plan_join_on(dataset, "value", 50_000, dataset, 4_000)
        assert large.method is JoinMethod.HASH_JOIN
        assert large.hash_join_cost < large.inlj_cost
