"""Unit tests for the merge pacer: token-bucket math under a fake
clock, the non-blocking (deterministic-scheduler) mode, and the
determinism contract -- pacing changes *when* merge chunks run, never
what they produce.
"""

import pytest

from repro.errors import ConfigurationError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.pacing import DEFAULT_MERGE_PACE_SLICE, MergePacer
from repro.lsm.scheduler import make_scheduler
from repro.lsm.storage import SimulatedDisk
from repro.obs.registry import MetricsRegistry, use_registry
from repro.types import Domain


class _FakeTime:
    """A manual clock whose ``sleep`` advances it -- the pacer's waits
    become exact arithmetic instead of wall time."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def _pacer(rate, burst, fake, **kwargs):
    return MergePacer(
        rate,
        burst=burst,
        registry=MetricsRegistry(),
        clock=fake.clock,
        sleep=fake.sleep,
        **kwargs,
    )


# ------------------------------------------------------------ construction


def test_rejects_non_positive_rate():
    for rate in (0, -1, -0.5):
        with pytest.raises(ConfigurationError, match="rate"):
            MergePacer(rate, registry=MetricsRegistry())


def test_rejects_non_positive_burst():
    with pytest.raises(ConfigurationError, match="burst"):
        MergePacer(100.0, burst=0, registry=MetricsRegistry())


def test_default_burst_covers_a_write_batch():
    # Never below one typical chunk, or a single chunk could exceed the
    # bucket and (without the charge cap) wait forever.
    assert MergePacer(10.0, registry=MetricsRegistry()).burst == 1024.0
    assert MergePacer(100_000.0, registry=MetricsRegistry()).burst == 10_000.0


# ------------------------------------------------------------- token math


def test_bucket_starts_full_and_first_burst_is_free():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake)
    assert pacer.pace(50) == 0.0
    assert fake.sleeps == []


def test_exhausted_bucket_sleeps_off_the_deficit_in_slices():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake)
    pacer.pace(50)  # drains the initial full bucket
    waited = pacer.pace(50)  # deficit: 50 tokens at 100/s = 0.5 s
    assert waited == pytest.approx(0.5)
    assert all(s <= DEFAULT_MERGE_PACE_SLICE for s in fake.sleeps)
    assert sum(fake.sleeps) == pytest.approx(0.5)


def test_refill_is_capped_at_burst():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake)
    fake.now += 1000.0  # a long idle buys at most `burst` tokens
    assert pacer.pace(50) == 0.0
    assert pacer.pace(1) > 0.0  # the 51st record is already paced


def test_charge_larger_than_burst_is_capped_so_waits_terminate():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake)
    pacer.pace(50)
    waited = pacer.pace(10_000)  # capped at burst: 50 tokens = 0.5 s
    assert waited == pytest.approx(0.5)


def test_zero_or_negative_records_are_free():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake)
    assert pacer.pace(0) == 0.0
    assert pacer.pace(-5) == 0.0
    assert fake.sleeps == []


def test_shared_bucket_bounds_total_throughput():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake)
    pacer.pace(30)
    pacer.pace(30)  # second caller pays the first caller's debt
    assert sum(fake.sleeps) == pytest.approx(0.1)


# -------------------------------------------------------- non-blocking mode


def test_non_blocking_never_sleeps():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake, blocking=False)
    for _ in range(10):
        assert pacer.pace(50) == 0.0
    assert fake.sleeps == []


def test_non_blocking_debt_is_clamped():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake, blocking=False)
    for _ in range(100):
        pacer.pace(50)  # would owe 4950 tokens without the clamp
    pacer.set_blocking(True)
    # Debt is clamped at -burst, so the worst catch-up is 2 buckets.
    waited = pacer.pace(50)
    assert waited == pytest.approx(1.0)  # (50 + 50) / 100


def test_set_blocking_toggles():
    fake = _FakeTime()
    pacer = _pacer(100.0, 50.0, fake, blocking=True)
    assert pacer.blocking
    pacer.set_blocking(False)
    assert not pacer.blocking


# ----------------------------------------------------------------- metrics


def test_pacer_metrics_account_tokens_and_waits():
    registry = MetricsRegistry()
    fake = _FakeTime()
    pacer = MergePacer(
        100.0,
        burst=50.0,
        registry=registry,
        clock=fake.clock,
        sleep=fake.sleep,
    )
    pacer.pace(50)  # free
    pacer.pace(50)  # one paced wait
    snapshot = registry.snapshot()
    assert snapshot["counters"]["merge.pacing.tokens"] == 100
    assert snapshot["counters"]["merge.pacing.waits"] == 1
    assert snapshot["histograms"]["merge.pacing.wait.seconds"]["count"] == 1
    assert snapshot["histograms"]["merge.pacing.wait.seconds"][
        "max"
    ] == pytest.approx(0.5)


# ----------------------------------------------- determinism & integration


def _ingest(merge_pacer, seed=7, records=600):
    """One virtual-scheduler ingest; returns (structure, scan, registry)."""
    registry = MetricsRegistry()
    with use_registry(registry):
        scheduler = make_scheduler("virtual", seed=seed)
        dataset = Dataset(
            "paced",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 2**20 - 1),
            indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
            memtable_capacity=32,
            merge_policy=ConstantMergePolicy(max_components=3),
            scheduler=scheduler,
            merge_pacer=merge_pacer,
        )
        for pk in range(records):
            dataset.insert({"id": pk, "value": (pk * 13) % 1024})
        for pk in range(0, records, 19):
            dataset.delete(pk)
        dataset.flush()
        scheduler.drain()
        structure = tuple(
            component.record_count for component in dataset.primary.components
        )
        scan = tuple(
            (record.key, record.value["value"])
            for record in dataset.primary.scan()
        )
        scheduler.shutdown()
    return structure, scan, registry


def test_virtual_runs_with_and_without_pacing_are_bit_identical():
    """The determinism contract: pacing throttles *when* merge chunks
    are processed, never their bytes, so a paced deterministic run ends
    identical to an unpaced one."""
    unpaced = _ingest(None)
    paced_pacer = MergePacer(1_000.0, burst=64.0, registry=MetricsRegistry())
    paced = _ingest(paced_pacer)
    assert paced[0] == unpaced[0]  # same component structure
    assert paced[1] == unpaced[1]  # same reconciled contents


def test_merges_charge_the_pacer():
    registry = MetricsRegistry()
    pacer = MergePacer(1_000_000.0, registry=registry)
    structure, _scan, _run_registry = _ingest(pacer)
    assert structure  # the workload actually produced components
    assert registry.snapshot()["counters"]["merge.pacing.tokens"] > 0


def test_flushes_are_never_paced():
    registry = MetricsRegistry()
    pacer = MergePacer(1_000_000.0, registry=registry)
    with use_registry(MetricsRegistry()):
        dataset = Dataset(
            "flush-only",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 2**20 - 1),
            memtable_capacity=1024,
            merge_pacer=pacer,
        )
        for pk in range(64):
            dataset.insert({"id": pk, "value": pk})
        dataset.flush()
    assert registry.snapshot()["counters"]["merge.pacing.tokens"] == 0
