"""Tests for the simulated disk and I/O accounting."""

import pytest

from repro.errors import StorageError
from repro.lsm.storage import IOStats, SimulatedDisk


def test_create_and_append():
    disk = SimulatedDisk()
    f = disk.create_file()
    assert f.append_page("p0") == 0
    assert f.append_page("p1") == 1
    assert f.num_pages == 2
    assert disk.stats.pages_written == 2
    assert disk.stats.bytes_written == 2 * disk.page_bytes


def test_read_back():
    disk = SimulatedDisk()
    f = disk.create_file()
    f.append_page({"a": 1})
    assert f.read_page(0) == {"a": 1}
    assert disk.stats.pages_read == 1


def test_sequential_vs_random_classification():
    disk = SimulatedDisk()
    f = disk.create_file()
    for i in range(5):
        f.append_page(i)
    f.read_page(0)  # random (first access)
    f.read_page(1)  # sequential
    f.read_page(2)  # sequential
    f.read_page(4)  # random (skip)
    f.read_page(0)  # random (backwards)
    assert disk.stats.sequential_reads == 2
    assert disk.stats.random_reads == 3


def test_sealed_file_is_immutable():
    disk = SimulatedDisk()
    f = disk.create_file()
    f.append_page(1)
    f.seal()
    with pytest.raises(StorageError):
        f.append_page(2)
    assert f.read_page(0) == 1  # reads still fine


def test_delete_file():
    disk = SimulatedDisk()
    f = disk.create_file()
    f.append_page(1)
    assert disk.live_files == 1
    f.delete()
    assert disk.live_files == 0
    with pytest.raises(StorageError):
        f.read_page(0)
    assert disk.stats.files_deleted == 1


def test_out_of_range_read():
    disk = SimulatedDisk()
    f = disk.create_file()
    with pytest.raises(StorageError):
        f.read_page(0)


def test_unknown_file():
    disk = SimulatedDisk()
    with pytest.raises(StorageError):
        disk.read_page(42, 0)


def test_invalid_page_bytes():
    with pytest.raises(StorageError):
        SimulatedDisk(page_bytes=0)


def test_stats_snapshot_and_delta():
    disk = SimulatedDisk()
    f = disk.create_file()
    f.append_page(1)
    before = disk.stats.snapshot()
    f.append_page(2)
    f.read_page(0)
    delta = disk.stats.delta(before)
    assert delta.pages_written == 1
    assert delta.pages_read == 1
    assert before.pages_written == 1  # snapshot is independent


def test_stats_add():
    a = IOStats(pages_written=1, pages_read=2)
    b = IOStats(pages_written=10, random_reads=3)
    c = a + b
    assert c.pages_written == 11
    assert c.pages_read == 2
    assert c.random_reads == 3


def test_delete_file_accounting():
    disk = SimulatedDisk()
    f = disk.create_file()
    for i in range(3):
        f.append_page(i)
    disk.delete_file(f.file_id)
    assert disk.stats.files_deleted == 1
    assert disk.stats.pages_deleted == 3
    assert disk.stats.bytes_reclaimed == 3 * disk.page_bytes
    with pytest.raises(StorageError):
        disk.read_page(f.file_id, 0)


def test_delete_files_except_returns_orphans():
    disk = SimulatedDisk()
    kept = disk.create_file()
    kept.append_page("keep")
    orphan_ids = [disk.create_file().file_id for _ in range(3)]
    deleted = disk.delete_files_except({kept.file_id})
    assert sorted(deleted) == sorted(orphan_ids)
    assert disk.stats.files_deleted == 3
    # The kept file stays readable.
    assert disk.read_page(kept.file_id, 0) == "keep"
    assert disk.live_file_ids() == {kept.file_id}


def test_superblock_survives_unlike_process_state():
    # The superblock models the fixed-location boot area: its contents
    # persist across a simulated crash (only in-memory objects die).
    disk = SimulatedDisk()
    disk.superblock["wal:ds.p0"] = 7
    disk.superblock["node.epoch"] = 2
    assert disk.superblock == {"wal:ds.p0": 7, "node.epoch": 2}
