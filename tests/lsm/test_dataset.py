"""Tests for the dataset layer (primary + secondary index maintenance)."""

import pytest

from repro.errors import BulkloadError, QueryError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.types import Domain


def _dataset(**kwargs):
    return Dataset(
        "tweets",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**31 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 999))],
        **kwargs,
    )


def _doc(pk, value):
    return {"id": pk, "value": value, "message": f"m{pk}"}


class TestCrud:
    def test_insert_and_get(self):
        ds = _dataset()
        ds.insert(_doc(1, 10))
        assert ds.get(1)["value"] == 10

    def test_update_existing(self):
        ds = _dataset()
        ds.insert(_doc(1, 10))
        assert ds.update(_doc(1, 20))
        assert ds.get(1)["value"] == 20

    def test_update_missing_returns_false(self):
        ds = _dataset()
        assert not ds.update(_doc(1, 10))

    def test_delete(self):
        ds = _dataset()
        ds.insert(_doc(1, 10))
        assert ds.delete(1)
        assert ds.get(1) is None
        assert not ds.delete(1)

    def test_missing_pk_field(self):
        ds = _dataset()
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            ds.insert({"value": 1})


class TestSecondaryMaintenance:
    def test_secondary_scan_reflects_inserts(self):
        ds = _dataset()
        for pk, value in [(1, 100), (2, 50), (3, 100)]:
            ds.insert(_doc(pk, value))
        entries = [(r.key[0], r.key[1]) for r in ds.scan_secondary("value_idx")]
        assert entries == [(50, 2), (100, 1), (100, 3)]

    def test_update_moves_secondary_entry(self):
        ds = _dataset()
        ds.insert(_doc(1, 100))
        ds.flush()  # force the old entry onto disk so anti-matter is needed
        ds.update(_doc(1, 200))
        ds.flush()
        entries = [r.key[0] for r in ds.scan_secondary("value_idx")]
        assert entries == [200]

    def test_update_same_sk_keeps_single_entry(self):
        ds = _dataset()
        ds.insert(_doc(1, 100))
        ds.update(_doc(1, 100))
        entries = [r.key for r in ds.scan_secondary("value_idx")]
        assert entries == [(100, 1)]

    def test_delete_removes_secondary_entry(self):
        ds = _dataset()
        ds.insert(_doc(1, 100))
        ds.insert(_doc(2, 200))
        ds.flush()
        ds.delete(1)
        assert [r.key[0] for r in ds.scan_secondary("value_idx")] == [200]

    def test_count_secondary_range(self):
        ds = _dataset()
        for pk in range(50):
            ds.insert(_doc(pk, pk * 10))
        assert ds.count_secondary_range("value_idx", 100, 200) == 11
        assert ds.count_secondary_range("value_idx", 0, 999) == 50

    def test_unknown_index(self):
        ds = _dataset()
        with pytest.raises(QueryError):
            ds.secondary_tree("nope")


class TestFlushCoordination:
    def test_auto_flush_flushes_all_indexes(self):
        ds = _dataset(memtable_capacity=10)
        for pk in range(25):
            ds.insert(_doc(pk, pk))
        assert ds.primary.flush_count == 2
        assert ds.secondary_tree("value_idx").flush_count == 2

    def test_forced_flush(self):
        ds = _dataset()
        ds.insert(_doc(1, 1))
        flushed = ds.flush()
        assert len(flushed) == 2  # primary + one secondary
        assert ds.flush() == []  # nothing left


class TestBulkload:
    def test_bulkload_single_components(self):
        ds = _dataset()
        ds.bulkload(_doc(pk, 999 - pk) for pk in range(100))
        assert len(ds.primary.components) == 1
        assert len(ds.secondary_tree("value_idx").components) == 1
        assert ds.count_records() == 100
        # Secondary entries were sorted by (SK, PK).
        sks = [r.key[0] for r in ds.scan_secondary("value_idx")]
        assert sks == sorted(sks)

    def test_bulkload_into_nonempty_rejected(self):
        ds = _dataset()
        ds.insert(_doc(1, 1))
        with pytest.raises(BulkloadError):
            ds.bulkload([_doc(2, 2)])

    def test_queries_after_bulkload(self):
        ds = _dataset()
        ds.bulkload(_doc(pk, pk) for pk in range(200))
        assert ds.get(150)["value"] == 150
        assert ds.count_secondary_range("value_idx", 10, 19) == 10


class TestEndToEnd:
    def test_mixed_workload_ground_truth(self):
        ds = _dataset(memtable_capacity=16)
        live = {}
        for pk in range(200):
            value = (pk * 37) % 1000
            ds.insert(_doc(pk, value))
            live[pk] = value
        for pk in range(0, 200, 3):
            value = (pk * 11) % 1000
            ds.update(_doc(pk, value))
            live[pk] = value
        for pk in range(0, 200, 7):
            ds.delete(pk)
            live.pop(pk, None)
        ds.flush()
        expected = sum(1 for v in live.values() if 100 <= v <= 400)
        assert ds.count_secondary_range("value_idx", 100, 400) == expected
        assert ds.count_records() == len(live)


class TestInsertMany:
    def test_matches_per_document_inserts(self):
        many = _dataset(memtable_capacity=64)
        loop = _dataset(memtable_capacity=64)
        docs = [_doc(pk, pk % 1000) for pk in range(200)]
        assert many.insert_many(docs) == 200
        for doc in docs:
            loop.insert(doc)
        assert many.count_records() == loop.count_records()
        assert many.get(123) == loop.get(123)
        # Same flush cadence: the batched path must honour the
        # memtable-capacity trigger per document, not per batch.
        assert len(many.primary.components) == len(loop.primary.components)
        assert many.count_secondary_range(
            "value_idx", 100, 300
        ) == loop.count_secondary_range("value_idx", 100, 300)

    def test_empty_batch(self):
        assert _dataset().insert_many([]) == 0
