"""Property tests for the memory arbiter's accounting invariant.

docs/MEMORY.md promises that the arbiter's accounted total equals the
ground-truth sum of component ``memory_bytes()`` at every quiescent
point, under every scheduler mode.  Hypothesis drives random
insert/delete/flush/cache interleavings (with a budget tight enough
that early flushes and immutable-pool backpressure genuinely fire) and
checks exactly that, plus the memtable's incremental byte counter
against its O(n) recompute oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.cache import MergedSynopsisCache
from repro.errors import ConfigurationError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.memory import MemoryArbiter, record_footprint
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.record import Record
from repro.lsm.scheduler import make_scheduler
from repro.lsm.storage import SimulatedDisk
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses import SynopsisType, create_builder
from repro.types import Domain

#: Tight enough that the per-dataset allowance sits below the memtable
#: capacity (early flushes fire) and two sealed memtables overflow the
#: immutable pool (backpressure waits fire).
_BUDGET = 8_192
_CAPACITY = 32

# An op is a (kind, argument) pair; the argument is reinterpreted per
# kind (primary key, dataset index, cache slot).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["insert", "delete", "flush", "cache_put", "cache_drop", "estimate"]
        ),
        st.integers(0, 40),
    ),
    max_size=60,
)


def _synopsis():
    return create_builder(SynopsisType.EQUI_WIDTH, Domain(0, 9), 4, 0).build()


def _ground_truth(datasets, cache):
    return sum(d.memory_bytes() for d in datasets) + cache.memory_bytes()


@pytest.mark.parametrize("mode", ["sync", "virtual", "threads"])
@settings(max_examples=25, deadline=None)
@given(ops=_OPS)
def test_accounted_total_equals_component_sum(mode, ops):
    registry = MetricsRegistry()
    with use_registry(registry):
        arbiter = MemoryArbiter(_BUDGET)
        cache = MergedSynopsisCache()
        arbiter.attach_cache(cache)
        scheduler = make_scheduler(mode, seed=7)
        datasets = [
            Dataset(
                f"acct{i}",
                SimulatedDisk(),
                primary_key="id",
                primary_domain=Domain(0, 1000),
                indexes=[IndexSpec("value_idx", "value", Domain(0, 99))],
                memtable_capacity=_CAPACITY,
                merge_policy=ConstantMergePolicy(max_components=3),
                scheduler=scheduler,
                maintenance_lane=f"acct.{i}",
                memory_arbiter=arbiter,
            )
            for i in range(2)
        ]
        try:
            version = 0
            live: list[set[int]] = [set(), set()]
            for kind, arg in ops:
                target = arg % 2
                dataset, keys = datasets[target], live[target]
                if kind == "insert":
                    if arg in keys:
                        dataset.update({"id": arg, "value": arg % 100})
                    else:
                        dataset.insert({"id": arg, "value": arg % 100})
                        keys.add(arg)
                elif kind == "delete":
                    dataset.delete(arg)
                    keys.discard(arg)
                elif kind == "flush":
                    dataset.flush()
                elif kind == "cache_put":
                    version += 1
                    cache.put(f"idx{arg % 5}", _synopsis(), _synopsis(), version)
                elif kind == "cache_drop":
                    cache.invalidate(f"idx{arg % 5}")
                elif kind == "estimate":
                    # Estimate traffic re-balances the adaptive split
                    # mid-run; the invariant must survive the new pools.
                    arbiter.note_estimate(16)
            for dataset in datasets:
                dataset.flush()
                dataset.drain_maintenance()
        finally:
            scheduler.shutdown()

        # Quiescent: the arbiter's incremental view must equal the
        # ground-truth sum of component footprints...
        assert arbiter.accounted_bytes() == _ground_truth(datasets, cache)
        assert arbiter.peak_bytes() >= arbiter.accounted_bytes()
        # ...and every memtable's running counter must match its O(n)
        # recompute oracle.
        for dataset in datasets:
            trees = [dataset.primary, dataset.secondary_tree("value_idx")]
            for tree in trees:
                assert (
                    tree.memtable.memory_bytes()
                    == tree.memtable.recompute_memory_bytes()
                )


def test_record_footprint_is_deterministic():
    assert record_footprint(Record.matter(1, {"id": 1})) == record_footprint(
        Record.matter(2, {"id": 2})
    )
    # Wider documents cost more; tombstones cost less than documents.
    assert record_footprint(
        Record.matter(1, {"id": 1, "value": 2})
    ) > record_footprint(Record.matter(1, {"id": 1}))
    assert record_footprint(Record.anti(1)) < record_footprint(
        Record.matter(1, {"id": 1})
    )


def test_arbiter_rejects_non_positive_budget():
    with pytest.raises(ConfigurationError):
        MemoryArbiter(0)


def test_early_flush_decision_is_a_pure_allowance_comparison():
    arbiter = MemoryArbiter(_BUDGET, registry=MetricsRegistry())
    arbiter.register_dataset("a")
    allowance = arbiter.write_allowance()
    assert not arbiter.should_early_flush(allowance)
    assert arbiter.should_early_flush(allowance + 1)


def test_rebalance_moves_the_split_toward_the_traffic():
    registry = MetricsRegistry()
    arbiter = MemoryArbiter(1 << 20, registry=registry)
    arbiter.register_dataset("a")
    for _ in range(2 * MemoryArbiter.REBALANCE_OPS):
        arbiter.note_write()
    write_heavy_pool = arbiter.write_pool_bytes()
    for _ in range(8 * MemoryArbiter.REBALANCE_OPS):
        arbiter.note_estimate()
    estimate_heavy_pool = arbiter.write_pool_bytes()
    assert write_heavy_pool > estimate_heavy_pool
    assert registry.snapshot()["counters"]["memory.rebalance.count"] >= 2
