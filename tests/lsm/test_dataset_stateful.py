"""Model-based stateful testing of the dataset layer.

Random insert/update/delete/flush interleavings against a dict model;
after every step the primary lookups and the *secondary-index-derived*
counts must agree with the model -- the strongest net over secondary
anti-matter maintenance.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.types import Domain

PKS = st.integers(0, 30)
VALUES = st.integers(0, 99)


class DatasetMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.dataset = Dataset(
            "model",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 1000),
            indexes=[IndexSpec("value_idx", "value", Domain(0, 99))],
            memtable_capacity=7,  # frequent automatic flushes
        )
        self.model: dict[int, int] = {}

    @rule(pk=PKS, value=VALUES)
    def insert_or_update(self, pk, value):
        if pk in self.model:
            assert self.dataset.update({"id": pk, "value": value})
        else:
            self.dataset.insert({"id": pk, "value": value})
        self.model[pk] = value

    @rule(pk=PKS)
    def delete(self, pk):
        existed = pk in self.model
        assert self.dataset.delete(pk) == existed
        self.model.pop(pk, None)

    @rule()
    def flush(self):
        self.dataset.flush()

    @rule(pk=PKS)
    def check_get(self, pk):
        document = self.dataset.get(pk)
        if pk in self.model:
            assert document is not None
            assert document["value"] == self.model[pk]
        else:
            assert document is None

    @rule(a=VALUES, b=VALUES)
    def check_secondary_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        expected = sum(1 for v in self.model.values() if lo <= v <= hi)
        assert self.dataset.count_secondary_range("value_idx", lo, hi) == expected

    @invariant()
    def secondary_entries_match_live_records(self):
        if getattr(self, "dataset", None) is None:
            return
        entries = [
            (r.key[0], r.key[1])
            for r in self.dataset.scan_secondary("value_idx")
        ]
        expected = sorted((v, pk) for pk, v in self.model.items())
        assert entries == expected


TestDatasetStateful = DatasetMachine.TestCase
TestDatasetStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
