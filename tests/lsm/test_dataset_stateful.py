"""Model-based stateful testing of the dataset layer.

Random insert/update/delete/flush interleavings against a dict model;
after every step the primary lookups and the *secondary-index-derived*
counts must agree with the model -- the strongest net over secondary
anti-matter maintenance.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.types import Domain

PKS = st.integers(0, 30)
VALUES = st.integers(0, 99)


class DatasetMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.dataset = Dataset(
            "model",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 1000),
            indexes=[IndexSpec("value_idx", "value", Domain(0, 99))],
            memtable_capacity=7,  # frequent automatic flushes
        )
        self.model: dict[int, int] = {}

    @rule(pk=PKS, value=VALUES)
    def insert_or_update(self, pk, value):
        if pk in self.model:
            assert self.dataset.update({"id": pk, "value": value})
        else:
            self.dataset.insert({"id": pk, "value": value})
        self.model[pk] = value

    @rule(pk=PKS)
    def delete(self, pk):
        existed = pk in self.model
        assert self.dataset.delete(pk) == existed
        self.model.pop(pk, None)

    @rule()
    def flush(self):
        self.dataset.flush()

    @rule(pk=PKS)
    def check_get(self, pk):
        document = self.dataset.get(pk)
        if pk in self.model:
            assert document is not None
            assert document["value"] == self.model[pk]
        else:
            assert document is None

    @rule(a=VALUES, b=VALUES)
    def check_secondary_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        expected = sum(1 for v in self.model.values() if lo <= v <= hi)
        assert self.dataset.count_secondary_range("value_idx", lo, hi) == expected

    @invariant()
    def secondary_entries_match_live_records(self):
        if getattr(self, "dataset", None) is None:
            return
        entries = [
            (r.key[0], r.key[1])
            for r in self.dataset.scan_secondary("value_idx")
        ]
        expected = sorted((v, pk) for pk, v in self.model.items())
        assert entries == expected


TestDatasetStateful = DatasetMachine.TestCase
TestDatasetStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)


# --------------------------------------------------------------------------
# Interleaved vs synchronous oracle


class InterleavedDatasetMachine(RuleBasedStateMachine):
    """Random ops x random maintenance interleavings vs the oracle.

    The same DML stream drives two datasets: one fully synchronous (the
    oracle) and one whose flushes/merges queue on a seeded
    :class:`VirtualScheduler` that hypothesis advances at arbitrary
    points between operations.  Logical contents must agree at every
    step; after each drain barrier the *physical* component structure
    and secondary-range counts must be bit-identical too -- the
    scheduler may move maintenance in time but never change what it
    builds.  A failing interleaving replays from the drawn seed.
    """

    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed):
        from repro.lsm.merge_policy import ConstantMergePolicy
        from repro.lsm.scheduler import VirtualScheduler

        def build(scheduler=None):
            return Dataset(
                "model",
                SimulatedDisk(),
                primary_key="id",
                primary_domain=Domain(0, 1000),
                indexes=[IndexSpec("value_idx", "value", Domain(0, 99))],
                memtable_capacity=6,  # frequent rotations
                merge_policy=ConstantMergePolicy(max_components=3),
                scheduler=scheduler,
            )

        self.scheduler = VirtualScheduler(seed=seed)
        self.oracle = build()
        self.concurrent = build(self.scheduler)
        self.model: dict[int, int] = {}

    def teardown(self):
        if getattr(self, "scheduler", None) is not None:
            self.scheduler.drain()
            self.scheduler.shutdown()

    @rule(pk=PKS, value=VALUES)
    def insert_or_update(self, pk, value):
        document = {"id": pk, "value": value}
        if pk in self.model:
            assert self.oracle.update(dict(document))
            assert self.concurrent.update(dict(document))
        else:
            self.oracle.insert(dict(document))
            self.concurrent.insert(dict(document))
        self.model[pk] = value

    @rule(pk=PKS)
    def delete(self, pk):
        existed = pk in self.model
        assert self.oracle.delete(pk) == existed
        assert self.concurrent.delete(pk) == existed
        self.model.pop(pk, None)

    @rule(steps=st.integers(1, 4))
    def advance_maintenance(self, steps):
        """Run a few queued background tasks -- the interleaving dial."""
        for _ in range(steps):
            if not self.scheduler.step():
                break

    @rule()
    def drain_and_compare_structure(self):
        """The barrier: both drained, physics must match bit-for-bit."""
        self.oracle.flush()
        self.concurrent.flush()  # schedules + drains under a scheduler
        assert self.scheduler.pending_count() == 0
        pairs = [
            (self.oracle.primary, self.concurrent.primary),
            (
                self.oracle.secondary_tree("value_idx"),
                self.concurrent.secondary_tree("value_idx"),
            ),
        ]
        for oracle_tree, concurrent_tree in pairs:
            assert [c.record_count for c in concurrent_tree.components] == [
                c.record_count for c in oracle_tree.components
            ]
            assert [
                (r.key, r.antimatter)
                for r in concurrent_tree.scan()
            ] == [(r.key, r.antimatter) for r in oracle_tree.scan()]
        for lo in (0, 25, 50):
            assert self.concurrent.count_secondary_range(
                "value_idx", lo, lo + 24
            ) == self.oracle.count_secondary_range("value_idx", lo, lo + 24)

    @invariant()
    def logical_contents_always_agree(self):
        if getattr(self, "oracle", None) is None:
            return
        assert [
            (r.key, r.value) for r in self.concurrent.primary.scan()
        ] == [(r.key, r.value) for r in self.oracle.primary.scan()]


TestInterleavedDatasetStateful = InterleavedDatasetMachine.TestCase
TestInterleavedDatasetStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
