"""Model-based stateful testing of the LSM tree.

Hypothesis drives random interleavings of upserts, deletes, flushes and
merges against an LSMTree while a plain dict tracks the expected live
state; after every step the tree must agree with the model on point
lookups, scans and counts.  This is the strongest correctness net over
the reconciliation machinery (newest-wins, anti-matter, partial merges).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.lsm.merge_policy import NoMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree

KEYS = st.integers(0, 40)  # small space -> frequent collisions


class LSMTreeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.tree = LSMTree(
            "model",
            SimulatedDisk(),
            memtable_capacity=8,  # frequent automatic flushes
            merge_policy=NoMergePolicy(),
        )
        self.model: dict[int, int] = {}
        self.writes = 0

    @rule(key=KEYS, value=st.integers())
    def upsert(self, key, value):
        self.tree.upsert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.tree.flush()

    @rule(data=st.data())
    def merge_some(self, data):
        components = self.tree.components
        if len(components) < 2:
            return
        # Merge a random contiguous run (exercises partial merges and
        # their anti-matter retention).
        start = data.draw(st.integers(0, len(components) - 2))
        end = data.draw(st.integers(start + 1, len(components) - 1))
        self.tree.merge(components[start : end + 1])

    @rule(key=KEYS)
    def check_point_lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(a=KEYS, b=KEYS)
    def check_range_scan(self, a, b):
        lo, hi = min(a, b), max(a, b)
        got = [(r.key, r.value) for r in self.tree.scan(lo, hi)]
        expected = sorted(
            (k, v) for k, v in self.model.items() if lo <= k <= hi
        )
        assert got == expected

    @invariant()
    def count_matches_model(self):
        if getattr(self, "tree", None) is None:
            return
        assert self.tree.count_range() == len(self.model)


TestLSMTreeStateful = LSMTreeMachine.TestCase
TestLSMTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
