"""Tests for merge cursors and reconciliation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.cursor import merge_streams, reconcile
from repro.lsm.record import Record


def _m(key, seq, value=None):
    return Record.matter(key, value, seqnum=seq)


def _a(key, seq):
    return Record.anti(key, seqnum=seq)


class TestMergeStreams:
    def test_disjoint(self):
        merged = merge_streams([[_m(1, 1), _m(3, 1)], [_m(2, 2), _m(4, 2)]])
        assert [r.key for r in merged] == [1, 2, 3, 4]

    def test_same_key_newest_first(self):
        merged = list(merge_streams([[_m(1, 1)], [_m(1, 5)], [_m(1, 3)]]))
        assert [r.seqnum for r in merged] == [5, 3, 1]

    def test_empty_streams(self):
        assert list(merge_streams([])) == []
        assert list(merge_streams([[], []])) == []

    def test_single_stream_passthrough(self):
        records = [_m(1, 1), _m(2, 2)]
        assert list(merge_streams([records])) == records


class TestReconcile:
    def test_newest_wins(self):
        merged = merge_streams([[_m(1, 1, "old")], [_m(1, 2, "new")]])
        out = list(reconcile(merged, keep_antimatter=False))
        assert len(out) == 1
        assert out[0].value == "new"

    def test_antimatter_cancels_on_read(self):
        merged = merge_streams([[_m(1, 1)], [_a(1, 2)]])
        assert list(reconcile(merged, keep_antimatter=False)) == []

    def test_antimatter_kept_on_partial_merge(self):
        merged = merge_streams([[_m(1, 1)], [_a(1, 2)]])
        out = list(reconcile(merged, keep_antimatter=True))
        assert len(out) == 1
        assert out[0].antimatter

    def test_matter_over_antimatter_when_newer(self):
        # Delete then re-insert: the re-insert (newer) wins.
        merged = merge_streams([[_a(1, 1)], [_m(1, 2, "back")]])
        out = list(reconcile(merged, keep_antimatter=False))
        assert [r.value for r in out] == ["back"]

    def test_interleaving_of_keys(self):
        merged = merge_streams(
            [
                [_m(1, 1), _a(2, 1), _m(3, 1)],
                [_a(1, 2), _m(2, 2), _m(4, 2)],
            ]
        )
        out = list(reconcile(merged, keep_antimatter=False))
        assert [(r.key, r.antimatter) for r in out] == [
            (2, False),
            (3, False),
            (4, False),
        ]


@settings(max_examples=50)
@given(
    st.lists(
        st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=20),
        max_size=5,
    )
)
def test_reconcile_matches_model(stream_specs):
    """Reconciliation must agree with a last-writer-wins dict model."""
    seq = 0
    streams = []
    model_writes = []  # (seqnum, key, antimatter)
    for spec in stream_specs:
        per_key = {}
        for key, anti in spec:
            seq += 1
            per_key[key] = (_a(key, seq) if anti else _m(key, seq))
        records = [per_key[k] for k in sorted(per_key)]
        streams.append(records)
        model_writes.extend((r.seqnum, r.key, r.antimatter) for r in records)

    model = {}
    for seqnum, key, anti in sorted(model_writes):
        model[key] = anti
    expected_live = sorted(k for k, anti in model.items() if not anti)

    out = list(reconcile(merge_streams(streams), keep_antimatter=False))
    assert [r.key for r in out] == expected_live

    # With keep_antimatter every key survives exactly once.
    out_all = list(
        reconcile(merge_streams([list(s) for s in streams]), keep_antimatter=True)
    )
    assert [r.key for r in out_all] == sorted(model)
    for record in out_all:
        assert record.antimatter == model[record.key]
