"""The columnar chunk representation and its compatibility fallbacks.

docs/DATAPATH.md is the contract under test: column layout and dtype
rules, lazy/memoized ``records()`` materialisation (counted as
``ingest.columnar.fallbacks``), the columnar B-tree leaf packing, and
the two compatibility lanes -- ``write_batch_size=None`` per-record
mode and custom index builders without a chunk twin -- which must
consume columnar chunks while materialising ``Record`` objects at most
once per chunk.
"""

import pytest

from repro.errors import BulkloadError
from repro.lsm.btree import build_btree, build_btree_chunks
from repro.lsm.columnar import (
    ColumnarChunk,
    columnar_chunk_stream,
    split_matter_anti,
)
from repro.lsm.events import EventBus, LSMEventType
from repro.lsm.record import Record
from repro.lsm.rtree import build_rtree
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree, _default_key_extractor
from repro.obs.registry import MetricsRegistry, use_registry


def _fallbacks(registry):
    return registry.snapshot()["counters"].get("ingest.columnar.fallbacks", 0)


class TestColumnarChunk:
    def test_from_records_columns(self):
        records = [
            Record.matter(3, {"v": 30}, seqnum=7),
            Record.anti(5, seqnum=8),
            Record.matter(9, {"v": 90}, seqnum=9),
        ]
        chunk = ColumnarChunk.from_records(records)
        assert len(chunk) == 3
        assert chunk.keys_list() == [3, 5, 9]
        assert list(chunk.typed_keys) == [3, 5, 9]
        assert chunk.values == [{"v": 30}, None, {"v": 90}]
        assert chunk.anti == [False, True, False]
        assert chunk.antimatter_count == 1
        assert list(chunk.seqnums) == [7, 8, 9]

    def test_pure_matter_chunk_drops_anti_column(self):
        chunk = ColumnarChunk.from_records([Record.matter(1), Record.matter(2)])
        assert chunk.anti is None
        assert chunk.antimatter_count == 0
        assert chunk.values is None  # all-None value column collapses

    def test_non_integer_keys_have_no_typed_column(self):
        strings = ColumnarChunk.from_records([Record.matter("A")])
        tuples = ColumnarChunk.from_columns([(1, 2), (3, 4)])
        huge = ColumnarChunk.from_columns([2**70])
        assert strings.typed_keys is None
        assert tuples.typed_keys is None
        assert huge.typed_keys is None
        assert strings.keys_list() == ["A"]
        assert tuples.keys_list() == [(1, 2), (3, 4)]

    def test_from_columns_defaults(self):
        chunk = ColumnarChunk.from_columns([4, 8])
        assert chunk.seqnums == range(2)
        assert chunk.values is None
        assert chunk.anti is None

    def test_payload_column_none_rules(self):
        chunk = ColumnarChunk.from_columns(
            [1, 2, 3], values=[{"a": 10}, {"b": 1}, "not-a-dict"]
        )
        assert chunk.payload_column("a") == [10, None, None]
        no_values = ColumnarChunk.from_columns([1, 2])
        assert no_values.payload_column("a") == [None, None]

    def test_from_records_materialisation_is_free(self):
        registry = MetricsRegistry()
        records = [Record.matter(1), Record.matter(2)]
        with use_registry(registry):
            chunk = ColumnarChunk.from_records(records)
            assert chunk.records() == records
        assert _fallbacks(registry) == 0

    def test_lazy_materialisation_counts_once_and_memoizes(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            chunk = ColumnarChunk.from_columns(
                [5, 6], values=[{"v": 1}, None], seqnums=range(10, 12)
            )
            first = chunk.records()
            second = chunk.records()  # memo: no second tick
            list(chunk)  # iteration shares the memo too
        assert first is second
        assert [r.key for r in first] == [5, 6]
        assert first[0].value == {"v": 1}
        assert first[0].seqnum == 10
        assert not first[0].antimatter
        assert _fallbacks(registry) == 1

    def test_chunk_stream_preserves_order_and_sizes(self):
        records = [Record.matter(k) for k in range(10)]
        chunks = list(columnar_chunk_stream(iter(records), 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [k for c in chunks for k in c.keys_list()] == list(range(10))


class TestSplitMatterAnti:
    def test_raw_key_fast_path_is_zero_copy(self):
        chunk = ColumnarChunk.from_columns([1, 2, 3])
        split = split_matter_anti(chunk, _default_key_extractor)
        assert split is not None
        matter, anti, skipped = split
        assert matter is chunk.typed_keys  # the typed buffer itself
        assert len(anti) == 0 and skipped == 0

    def test_mixed_chunk_splits_in_row_order(self):
        chunk = ColumnarChunk.from_records(
            [Record.matter(1), Record.anti(2), Record.matter(3)]
        )
        matter, anti, skipped = split_matter_anti(
            chunk, _default_key_extractor
        )
        assert list(matter) == [1, 3]
        assert list(anti) == [2]
        assert skipped == 0

    def test_payload_field_extractor_skips_nones(self):
        def extractor(record):
            payload = record.value
            return payload.get("v") if isinstance(payload, dict) else None

        extractor.payload_field = "v"
        chunk = ColumnarChunk.from_columns(
            [1, 2, 3], values=[{"v": 10}, None, {"v": 30}]
        )
        matter, anti, skipped = split_matter_anti(chunk, extractor)
        assert list(matter) == [10, 30]
        assert skipped == 1

    def test_unknown_extractor_returns_none(self):
        chunk = ColumnarChunk.from_columns([1, 2])
        assert split_matter_anti(chunk, lambda r: r.key) is None


class TestColumnarBTreeBuild:
    def test_columnar_build_matches_per_record(self):
        records = [Record.matter(key, {"k": key}) for key in range(1000)]
        flat = build_btree(SimulatedDisk(), iter(records))
        chunked = build_btree_chunks(
            SimulatedDisk(), columnar_chunk_stream(iter(records), 64)
        )
        assert [(r.key, r.value) for r in chunked.scan()] == [
            (r.key, r.value) for r in flat.scan()
        ]
        assert chunked.num_records == flat.num_records
        assert chunked.lookup(517).key == 517
        assert chunked.lookup(-1) is None

    def test_columnar_unsorted_within_chunk_rejected(self):
        chunk = ColumnarChunk.from_columns([2, 1])
        with pytest.raises(BulkloadError, match="not strictly sorted"):
            build_btree_chunks(SimulatedDisk(), iter([chunk]))

    def test_columnar_unsorted_across_boundary_rejected(self):
        chunks = [
            ColumnarChunk.from_columns([5]),
            ColumnarChunk.from_columns([4]),
        ]
        with pytest.raises(BulkloadError, match="not strictly sorted"):
            build_btree_chunks(SimulatedDisk(), iter(chunks))

    def test_mixed_representations_mid_leaf_rejected(self):
        chunks = [
            ColumnarChunk.from_columns([1]),
            [Record.matter(2)],
        ]
        with pytest.raises(BulkloadError, match="interleave"):
            build_btree_chunks(SimulatedDisk(), iter(chunks), leaf_capacity=4)

    def test_list_chunks_still_accepted(self):
        records = [Record.matter(key) for key in range(100)]
        chunked = build_btree_chunks(
            SimulatedDisk(), iter([records[:60], records[60:]])
        )
        assert [r.key for r in chunked.scan()] == list(range(100))


class _PerRecordOnlySink:
    """An observer sink without ``accept_many`` (forces iteration)."""

    def __init__(self):
        self.keys = []

    def accept(self, record):
        self.keys.append(record.key)

    def finish(self, component):
        pass


class _PerRecordObserver:
    def __init__(self):
        self.sinks = []

    def begin_component_write(self, context):
        sink = _PerRecordOnlySink()
        self.sinks.append(sink)
        return sink

    def component_replaced(self, *args):
        pass


class TestCompatFallbacks:
    def test_per_record_mode_materialises_each_chunk_once(self):
        # write_batch_size=None fed columnar chunks (the satellite-4
        # regression): the flattening must reuse the memoized
        # materialisation, one Record build per chunk, not two.
        registry = MetricsRegistry()
        with use_registry(registry):
            tree = LSMTree(
                "t.compat",
                SimulatedDisk(),
                event_bus=EventBus(),
                write_batch_size=None,
                registry=registry,
            )
            chunks = [
                ColumnarChunk.from_columns([0, 1, 2], seqnums=range(3)),
                ColumnarChunk.from_columns([3, 4], seqnums=range(3, 5)),
            ]
            component = tree._write_component(
                LSMEventType.BULKLOAD, None, chunks=iter(chunks)
            )
        assert component.matter_count == 5
        assert [r.key for r in component.scan()] == [0, 1, 2, 3, 4]
        assert _fallbacks(registry) == len(chunks)

    def test_custom_builder_flattening_materialises_once(self):
        # An index builder without a chunk twin (the LSM-ified R-tree)
        # plus a per-record-only observer: both iterate every chunk,
        # but the memo keeps it to one materialisation per chunk.
        registry = MetricsRegistry()
        n = 100
        with use_registry(registry):
            tree = LSMTree(
                "t.rtree",
                SimulatedDisk(),
                event_bus=EventBus(),
                index_builder=build_rtree,
                write_batch_size=16,
                registry=registry,
            )
            observer = _PerRecordObserver()
            tree.event_bus.subscribe(observer)
            tree.bulkload(
                (Record.matter((k, k * 2, k)) for k in range(n)),
                expected_records=n,
            )
        expected_chunks = -(-n // 16)
        assert _fallbacks(registry) == expected_chunks
        assert observer.sinks[0].keys == [(k, k * 2, k) for k in range(n)]
        assert tree.components[0].matter_count == n

    def test_flush_chunks_never_fall_back(self):
        # Memtable flush chunks carry their source records as the memo,
        # so even a per-record-only observer costs no materialisation.
        registry = MetricsRegistry()
        with use_registry(registry):
            tree = LSMTree(
                "t.flush",
                SimulatedDisk(),
                event_bus=EventBus(),
                auto_flush=False,
                write_batch_size=8,
                registry=registry,
            )
            tree.event_bus.subscribe(_PerRecordObserver())
            for key in range(50):
                tree.upsert(key)
            tree.flush()
        counters = registry.snapshot()["counters"]
        assert counters.get("ingest.columnar.fallbacks", 0) == 0
        assert counters["ingest.columnar.chunks"] == -(-50 // 8)

    def test_columnar_instruments_emitted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            tree = LSMTree(
                "t.obs",
                SimulatedDisk(),
                event_bus=EventBus(),
                write_batch_size=32,
                registry=registry,
            )
            tree.bulkload(
                (Record.matter(k) for k in range(100)), expected_records=100
            )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["ingest.columnar.chunks"] == 4
        histogram = snapshot["histograms"]["ingest.columnar.chunk_records"]
        assert histogram["count"] == 4
        assert histogram["sum"] == 100
        assert "ingest.columnar.numpy_backend" in snapshot["gauges"]
