"""Tests for the mutable in-memory component."""

from repro.lsm.memtable import MemTable
from repro.lsm.record import Record


def test_empty():
    m = MemTable()
    assert len(m) == 0
    assert not m
    assert m.get(1) is None
    assert m.seqnum_range is None
    assert list(m.sorted_records()) == []


def test_write_and_get():
    m = MemTable()
    m.write(Record.matter(5, "v5", seqnum=1))
    m.write(Record.matter(3, "v3", seqnum=2))
    assert len(m) == 2
    assert m.get(5).value == "v5"
    assert m.seqnum_range == (1, 2)


def test_newest_write_wins_in_place():
    m = MemTable()
    m.write(Record.matter(1, "old", seqnum=1))
    m.write(Record.matter(1, "new", seqnum=2))
    assert len(m) == 1
    assert m.get(1).value == "new"


def test_delete_replaces_with_antimatter():
    m = MemTable()
    m.write(Record.matter(1, "v", seqnum=1))
    m.write(Record.anti(1, seqnum=2))
    assert len(m) == 1
    assert m.get(1).antimatter
    assert m.antimatter_count == 1


def test_reinsert_after_delete_clears_antimatter_count():
    m = MemTable()
    m.write(Record.anti(1, seqnum=1))
    m.write(Record.matter(1, "back", seqnum=2))
    assert m.antimatter_count == 0
    assert not m.get(1).antimatter


def test_sorted_records_in_key_order():
    m = MemTable()
    for key in [9, 2, 7, 4]:
        m.write(Record.matter(key, seqnum=key))
    assert [r.key for r in m.sorted_records()] == [2, 4, 7, 9]


def test_scan_range():
    m = MemTable()
    for key in range(0, 20, 2):
        m.write(Record.matter(key, seqnum=key))
    assert [r.key for r in m.scan(5, 11)] == [6, 8, 10]


def test_reset():
    m = MemTable()
    m.write(Record.anti(1, seqnum=1))
    m.reset()
    assert len(m) == 0
    assert m.antimatter_count == 0
    assert m.seqnum_range is None
