"""Tests for the immutable disk B-tree built by bulkload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BulkloadError
from repro.lsm.btree import build_btree
from repro.lsm.record import Record
from repro.lsm.storage import SimulatedDisk


def _tree(keys, leaf_capacity=4, fanout=4):
    disk = SimulatedDisk()
    tree = build_btree(
        disk,
        (Record.matter(k, f"v{k}") for k in keys),
        leaf_capacity=leaf_capacity,
        fanout=fanout,
    )
    return disk, tree


class TestBuild:
    def test_empty(self):
        _disk, tree = _tree([])
        assert len(tree) == 0
        assert tree.lookup(1) is None
        assert list(tree.scan()) == []
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_single_leaf(self):
        _disk, tree = _tree([1, 2, 3])
        assert tree.height == 0
        assert len(tree) == 3

    def test_multi_level(self):
        _disk, tree = _tree(range(100), leaf_capacity=4, fanout=4)
        assert tree.height >= 2
        assert len(tree) == 100

    def test_rejects_unsorted(self):
        disk = SimulatedDisk()
        with pytest.raises(BulkloadError):
            build_btree(disk, [Record.matter(2), Record.matter(1)])

    def test_rejects_duplicates(self):
        disk = SimulatedDisk()
        with pytest.raises(BulkloadError):
            build_btree(disk, [Record.matter(1), Record.matter(1)])

    def test_rejects_bad_parameters(self):
        disk = SimulatedDisk()
        with pytest.raises(BulkloadError):
            build_btree(disk, [], leaf_capacity=1)


class TestLookup:
    def test_present_and_absent(self):
        _disk, tree = _tree(range(0, 200, 2))
        assert tree.lookup(100).value == "v100"
        assert tree.lookup(101) is None
        assert tree.lookup(-1) is None
        assert tree.lookup(1000) is None

    def test_boundaries(self):
        _disk, tree = _tree(range(0, 64))
        assert tree.lookup(0).key == 0
        assert tree.lookup(63).key == 63
        assert tree.min_key() == 0
        assert tree.max_key() == 63

    def test_lookup_charges_io(self):
        disk, tree = _tree(range(100), leaf_capacity=4, fanout=4)
        before = disk.stats.snapshot()
        tree.lookup(50)
        delta = disk.stats.delta(before)
        assert delta.pages_read == tree.height + 1


class TestScan:
    def test_full_scan_in_order(self):
        _disk, tree = _tree(range(0, 50))
        assert [r.key for r in tree.scan()] == list(range(50))

    def test_range_scan(self):
        _disk, tree = _tree(range(0, 100, 3))
        keys = [r.key for r in tree.scan(10, 30)]
        assert keys == [12, 15, 18, 21, 24, 27, 30]

    def test_range_scan_empty(self):
        _disk, tree = _tree(range(0, 100, 10))
        assert list(tree.scan(41, 49)) == []

    def test_scan_preserves_antimatter(self):
        disk = SimulatedDisk()
        records = [Record.matter(1), Record.anti(2), Record.matter(3)]
        tree = build_btree(disk, records)
        flags = [(r.key, r.antimatter) for r in tree.scan()]
        assert flags == [(1, False), (2, True), (3, False)]

    def test_destroy_releases_file(self):
        disk, tree = _tree(range(10))
        assert disk.live_files == 1
        tree.destroy()
        assert disk.live_files == 0


@settings(max_examples=40)
@given(
    st.sets(st.integers(-10_000, 10_000), max_size=300),
    st.integers(2, 10),
    st.integers(2, 10),
)
def test_roundtrip_property(keys, leaf_capacity, fanout):
    ordered = sorted(keys)
    _disk, tree = _tree(ordered, leaf_capacity=leaf_capacity, fanout=fanout)
    assert [r.key for r in tree.scan()] == ordered
    for probe in list(ordered)[:20]:
        assert tree.lookup(probe) is not None
    assert tree.lookup(10_001) is None


@settings(max_examples=30)
@given(
    st.sets(st.integers(0, 1000), max_size=200),
    st.integers(0, 1000),
    st.integers(0, 1000),
)
def test_range_scan_property(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    _disk, tree = _tree(sorted(keys), leaf_capacity=8, fanout=8)
    got = [r.key for r in tree.scan(lo, hi)]
    assert got == sorted(k for k in keys if lo <= k <= hi)
