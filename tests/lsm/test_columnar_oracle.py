"""The columnar pipeline's oracle: bit-identity with the per-record path.

docs/DATAPATH.md promises that the columnar chunk representation is a
*pure* optimisation: for any operation sequence, any batch size, and
either compute backend (numpy flag on or off), the components written,
the statistics published, and the reconciled scans equal those of the
``write_batch_size=None`` per-record path bit for bit -- synopsis
payloads included, across every synopsis family (GK compress cadence
and reservoir RNG draws are sequence-sensitive, so this is a strong
property).  Hypothesis drives the operation sequences; a scripted
dataset lifecycle additionally covers secondary indexes, attribute
statistics, merge and crash recovery.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collector import StatisticsCollector
from repro.core.config import StatisticsConfig
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.events import EventBus
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.record import Record
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree
from repro.obs.registry import MetricsRegistry, use_registry
from repro.synopses.base import SynopsisType
from repro.types import Domain
from repro.util.npbackend import numpy_backend

DOMAIN = Domain(0, 1023)
VALUE_DOMAIN = Domain(0, 255)
BUDGET = 16

ALL_TYPES = sorted(SynopsisType, key=lambda t: t.value)
UNSORTED_TYPES = [t for t in ALL_TYPES if not t.requires_sorted_input]


class _CaptureSink:
    """Records publish/retract payloads (uids differ between runs)."""

    def __init__(self):
        self.events = []

    def publish(self, index_name, component_uid, synopsis, anti_synopsis):
        self.events.append(
            (
                "publish",
                index_name,
                synopsis.to_payload(),
                anti_synopsis.to_payload(),
            )
        )

    def retract(self, index_name, component_uids):
        self.events.append(("retract", index_name, len(component_uids)))


def _tree_lifecycle(synopsis_type, ops, batch, numpy_on):
    """Bulkload + upserts/deletes + flushes + merge under one config."""
    with use_registry(MetricsRegistry()), numpy_backend(numpy_on):
        tree = LSMTree(
            "t.primary",
            SimulatedDisk(),
            memtable_capacity=4096,
            event_bus=EventBus(),
            auto_flush=False,
            write_batch_size=batch,
        )
        sink = _CaptureSink()
        collector = StatisticsCollector(
            StatisticsConfig(synopsis_type, budget=BUDGET), sink
        )
        collector.register_index(tree.name, DOMAIN)
        tree.event_bus.subscribe(collector)
        tree.bulkload(
            (Record.matter(key, {"k": key}) for key in range(0, 64, 2)),
            expected_records=32,
        )
        for op, key in ops:
            if op == "upsert":
                tree.upsert(key, {"k": key})
            elif op == "delete":
                tree.delete(key)
            else:
                tree.flush()
        tree.flush()
        if len(tree.components) >= 2:
            tree.merge(tree.components)
        scan = [(r.key, r.value, r.antimatter) for r in tree.scan()]
        seqnums = [r.seqnum for c in tree.components for r in c.scan()]
    return sink.events, scan, seqnums, tree.observer_failures


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["upsert", "delete", "flush"]),
        st.integers(DOMAIN.lo, DOMAIN.hi),
    ),
    min_size=0,
    max_size=60,
)


@pytest.mark.parametrize("synopsis_type", ALL_TYPES, ids=lambda t: t.value)
@given(ops=_OPS, batch=st.sampled_from([1, 7, 512]))
@settings(max_examples=10, deadline=None)
def test_columnar_lifecycle_bit_identical(synopsis_type, ops, batch):
    reference = _tree_lifecycle(synopsis_type, ops, None, numpy_on=False)
    assert reference[3] == 0  # the oracle itself must not drop sinks
    for numpy_on in (False, True):
        assert (
            _tree_lifecycle(synopsis_type, ops, batch, numpy_on) == reference
        ), (batch, numpy_on)


def _make_dataset(disk, batch, recover=False):
    return Dataset(
        "ds",
        disk,
        primary_key="id",
        primary_domain=DOMAIN,
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        memtable_capacity=64,
        merge_policy=ConstantMergePolicy(max_components=3),
        write_batch_size=batch,
        durable=True,
        recover=recover,
    )


def _attach(dataset, synopsis_type):
    sink = _CaptureSink()
    collector = StatisticsCollector(
        StatisticsConfig(synopsis_type, budget=BUDGET), sink
    )
    collector.register_index(dataset.primary.name, DOMAIN)
    collector.register_index(
        dataset.secondary_tree("value_idx").name, VALUE_DOMAIN
    )
    if not synopsis_type.requires_sorted_input:
        collector.register_attribute(
            dataset.primary.name, "extra", VALUE_DOMAIN
        )
    dataset.event_bus.subscribe(collector)
    return sink


def _doc(pk):
    return {"id": pk, "value": (pk * 13) % 256, "extra": (pk * 7) % 256}


def _dataset_lifecycle(synopsis_type, batch, numpy_on):
    """Bulkload, DML with automatic flush/merge, crash, recovery."""
    with use_registry(MetricsRegistry()), numpy_backend(numpy_on):
        disk = SimulatedDisk()
        dataset = _make_dataset(disk, batch)
        sink = _attach(dataset, synopsis_type)
        dataset.bulkload(_doc(pk) for pk in range(128))
        for pk in range(128, 400):
            dataset.insert(_doc(pk))
        for pk in range(0, 100, 3):
            dataset.delete(pk)
        dataset.flush()
        primary_scan = [
            (r.key, r.value) for r in dataset.primary.scan()
        ]
        secondary_scan = [
            r.key for r in dataset.scan_secondary("value_idx")
        ]
        # "Crash": abandon the instance, recover from disk and let the
        # collector re-derive statistics by scanning the components.
        recovered = _make_dataset(disk, batch, recover=True)
        recovery_sink = _attach(recovered, synopsis_type)
        recovered.complete_recovery()
        recovered_scan = [
            (r.key, r.value) for r in recovered.primary.scan()
        ]
    return (
        sink.events,
        primary_scan,
        secondary_scan,
        recovery_sink.events,
        recovered_scan,
    )


@pytest.mark.parametrize(
    "synopsis_type",
    [SynopsisType.EQUI_WIDTH, SynopsisType.WAVELET] + UNSORTED_TYPES,
    ids=lambda t: t.value,
)
def test_scripted_dataset_lifecycle_with_recovery(synopsis_type):
    reference = _dataset_lifecycle(synopsis_type, None, numpy_on=False)
    assert reference[1]  # sanity: the workload left live records
    assert any(event[0] == "retract" for event in reference[0])  # merged
    for batch in (7, 512):
        for numpy_on in (False, True):
            assert (
                _dataset_lifecycle(synopsis_type, batch, numpy_on)
                == reference
            ), (batch, numpy_on)
