"""Failure injection: statistics observers must never break ingestion.

The framework's selling point is being a lightweight passenger on the
LSM lifecycle; a bug or resource failure in a synopsis builder (or in
the network sink shipping it) must not fail the flush/merge itself.
"""

import pytest

from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree


class _ExplodingSink:
    """Fails on the Nth accepted record (or on finish)."""

    def __init__(self, fail_at=None, fail_on_finish=False):
        self.fail_at = fail_at
        self.fail_on_finish = fail_on_finish
        self.accepted = 0
        self.finished = 0

    def accept(self, record):
        self.accepted += 1
        if self.fail_at is not None and self.accepted >= self.fail_at:
            raise RuntimeError("injected accept failure")

    def finish(self, component):
        if self.fail_on_finish:
            raise RuntimeError("injected finish failure")
        self.finished += 1


class _Observer:
    def __init__(self, sink):
        self.sink = sink

    def begin_component_write(self, context):
        return self.sink

    def component_replaced(self, index_name, old, new):
        pass


def _tree_with(sink):
    tree = LSMTree("t", SimulatedDisk(), memtable_capacity=1000)
    tree.event_bus.subscribe(_Observer(sink))
    return tree


def test_accept_failure_does_not_break_flush():
    sink = _ExplodingSink(fail_at=3)
    tree = _tree_with(sink)
    for i in range(10):
        tree.upsert(i, i)
    component = tree.flush()
    assert component is not None
    assert component.matter_count == 10
    assert tree.observer_failures == 1
    # The failed sink was dropped mid-stream and never finished.
    assert sink.accepted == 3
    assert sink.finished == 0
    # Data remains fully readable.
    assert tree.count_range() == 10


def test_finish_failure_does_not_break_flush():
    sink = _ExplodingSink(fail_on_finish=True)
    tree = _tree_with(sink)
    tree.upsert(1, "a")
    assert tree.flush() is not None
    assert tree.observer_failures == 1
    assert tree.get(1) == "a"


def test_healthy_observer_unaffected_by_failing_peer():
    failing = _ExplodingSink(fail_at=1)
    healthy = _ExplodingSink()  # never fails
    tree = LSMTree("t", SimulatedDisk(), memtable_capacity=1000)
    tree.event_bus.subscribe(_Observer(failing))
    tree.event_bus.subscribe(_Observer(healthy))
    for i in range(5):
        tree.upsert(i, i)
    tree.flush()
    assert healthy.accepted == 5
    assert healthy.finished == 1
    assert tree.observer_failures == 1


def test_merge_survives_observer_failure():
    sink = _ExplodingSink(fail_at=1)
    tree = LSMTree("t", SimulatedDisk(), memtable_capacity=1000)
    tree.upsert(1, "a")
    tree.flush()
    tree.upsert(2, "b")
    tree.flush()
    tree.event_bus.subscribe(_Observer(sink))
    merged = tree.merge(tree.components)
    assert merged.matter_count == 2
    assert tree.observer_failures == 1
    assert tree.count_range() == 2


def test_no_failures_counted_when_observers_healthy():
    sink = _ExplodingSink()
    tree = _tree_with(sink)
    for i in range(5):
        tree.upsert(i, i)
    tree.flush()
    assert tree.observer_failures == 0
    assert sink.finished == 1
