"""Tests for Bloom filters and their LSM integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.lsm.bloom import BloomFilter
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree


class TestBloomFilter:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(0, 1)
        with pytest.raises(ConfigurationError):
            BloomFilter(8, 0)
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(100, fpp=0.0)
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(100, fpp=1.0)

    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(1000, fpp=0.01)
        keys = list(range(0, 2000, 2))
        bloom.add_all(keys)
        assert all(bloom.might_contain(key) for key in keys)
        assert bloom.num_added == len(keys)

    def test_false_positive_rate_roughly_bounded(self):
        bloom = BloomFilter.for_capacity(1000, fpp=0.01)
        bloom.add_all(range(1000))
        false_positives = sum(
            1 for probe in range(10_000, 20_000) if bloom.might_contain(probe)
        )
        assert false_positives < 500  # ~1% nominal, 5% generous bound

    def test_contains_operator(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add("hello")
        assert "hello" in bloom

    def test_sizing_grows_with_capacity(self):
        small = BloomFilter.for_capacity(100)
        large = BloomFilter.for_capacity(100_000)
        assert large.size_bytes > small.size_bytes

    @given(st.sets(st.integers(-(10**6), 10**6), max_size=500))
    @settings(max_examples=30)
    def test_never_false_negative_property(self, keys):
        bloom = BloomFilter.for_capacity(max(1, len(keys)))
        bloom.add_all(keys)
        assert all(key in bloom for key in keys)

    def test_tuple_keys(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add((5, 17))
        assert (5, 17) in bloom


class TestLSMIntegration:
    def test_components_carry_filters(self):
        tree = LSMTree("t", SimulatedDisk())
        for i in range(100):
            tree.upsert(i, i)
        component = tree.flush()
        assert component.bloom is not None
        assert component.bloom.num_added == 100

    def test_bloom_disabled(self):
        tree = LSMTree("t", SimulatedDisk(), bloom_fpp=None)
        tree.upsert(1, 1)
        assert tree.flush().bloom is None

    def test_miss_lookups_skip_io(self):
        disk = SimulatedDisk()
        tree = LSMTree("t", disk, memtable_capacity=100)
        for i in range(1000):
            tree.upsert(i * 2, i)  # even keys only
        tree.flush()
        before = disk.stats.snapshot()
        misses = 0
        for probe in range(1, 2000, 20):  # odd keys: all absent
            assert tree.get(probe) is None
            misses += 1
        delta = disk.stats.delta(before)
        # Nearly every miss is answered by the filters without I/O.
        assert delta.pages_read < misses
        negatives = sum(c.bloom_negatives for c in tree.components)
        assert negatives >= misses * 0.9

    def test_lookups_still_correct_with_filters(self):
        tree = LSMTree("t", SimulatedDisk(), memtable_capacity=64)
        for i in range(500):
            tree.upsert(i, f"v{i}")
        for i in range(0, 500, 3):
            tree.delete(i)
        tree.flush()
        for i in range(500):
            expected = None if i % 3 == 0 else f"v{i}"
            assert tree.get(i) == expected


class TestBufferCache:
    def test_cache_disabled_by_default(self):
        disk = SimulatedDisk()
        f = disk.create_file()
        f.append_page("a")
        f.read_page(0)
        f.read_page(0)
        assert disk.stats.pages_read == 2
        assert disk.stats.cache_hits == 0

    def test_cache_hit_skips_io(self):
        disk = SimulatedDisk(cache_pages=8)
        f = disk.create_file()
        f.append_page("a")  # enters the cache on write
        assert f.read_page(0) == "a"
        assert disk.stats.cache_hits == 1
        assert disk.stats.pages_read == 0

    def test_lru_eviction(self):
        disk = SimulatedDisk(cache_pages=2)
        f = disk.create_file()
        for i in range(3):
            f.append_page(i)
        # Pages 1 and 2 are cached; page 0 was evicted.
        f.read_page(0)
        assert disk.stats.cache_misses == 1
        assert disk.stats.pages_read == 1

    def test_delete_invalidates_cache(self):
        disk = SimulatedDisk(cache_pages=8)
        f = disk.create_file()
        f.append_page("a")
        f.delete()
        g = disk.create_file()
        g.append_page("b")
        assert g.read_page(0) == "b"

    def test_invalid_cache_size(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            SimulatedDisk(cache_pages=-1)

    def test_cached_tree_reads_less(self):
        cold = SimulatedDisk()
        warm = SimulatedDisk(cache_pages=10_000)
        for disk in (cold, warm):
            tree = LSMTree("t", disk, memtable_capacity=512)
            for i in range(2000):
                tree.upsert(i, i)
            tree.flush()
            for probe in range(0, 2000, 10):
                assert tree.get(probe) == probe
        assert warm.stats.pages_read < cold.stats.pages_read
