"""Tests for the LSM-ified R-tree spatial index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BulkloadError, QueryError
from repro.lsm.dataset import Dataset, SpatialIndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.record import Record
from repro.lsm.rtree import MBR, build_rtree
from repro.lsm.storage import SimulatedDisk
from repro.types import Domain


def _tree(points, leaf_capacity=4, fanout=4):
    disk = SimulatedDisk()
    records = [
        Record.matter((x, y, pk))
        for pk, (x, y) in enumerate(sorted_points(points))
    ]
    return disk, build_rtree(
        disk, records, leaf_capacity=leaf_capacity, fanout=fanout
    )


def sorted_points(points):
    return sorted(points)


class TestMBR:
    def test_of_points(self):
        mbr = MBR.of_points([(1, 5), (3, 2), (2, 8)])
        assert (mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y) == (1, 2, 3, 8)

    def test_union(self):
        union = MBR.union([MBR(0, 0, 1, 1), MBR(5, 5, 9, 9)])
        assert (union.min_x, union.max_x) == (0, 9)

    def test_intersects(self):
        mbr = MBR(2, 2, 5, 5)
        assert mbr.intersects(0, 10, 0, 10)
        assert mbr.intersects(5, 9, 5, 9)  # corner touch
        assert not mbr.intersects(6, 9, 0, 10)
        assert not mbr.intersects(0, 10, 6, 9)

    def test_contains_point(self):
        mbr = MBR(2, 2, 5, 5)
        assert mbr.contains_point(2, 5)
        assert not mbr.contains_point(1, 3)


class TestDiskRTree:
    def test_empty(self):
        _disk, tree = _tree([])
        assert len(tree) == 0
        assert list(tree.search(0, 100, 0, 100)) == []
        assert list(tree.scan()) == []
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert tree.mbr is None

    def test_rectangle_search(self):
        points = [(x, y) for x in range(0, 50, 5) for y in range(0, 50, 5)]
        _disk, tree = _tree(points)
        got = sorted((r.key[0], r.key[1]) for r in tree.search(10, 20, 10, 20))
        expected = sorted(
            (x, y) for x, y in points if 10 <= x <= 20 and 10 <= y <= 20
        )
        assert got == expected

    def test_search_prunes_pages(self):
        points = [(x, x) for x in range(512)]  # diagonal
        disk, tree = _tree(points, leaf_capacity=8, fanout=8)
        before = disk.stats.snapshot()
        list(tree.search(0, 7, 0, 7))
        pruned = disk.stats.delta(before).pages_read
        before = disk.stats.snapshot()
        list(tree.scan())
        full = disk.stats.delta(before).pages_read
        assert pruned < full / 4  # MBR descent skips most pages

    def test_ordered_scan(self):
        points = [(x % 7, x % 11) for x in range(100)]
        _disk, tree = _tree(set(points))
        keys = [r.key for r in tree.scan()]
        assert keys == sorted(keys)

    def test_scan_range(self):
        points = [(x, 0) for x in range(20)]
        _disk, tree = _tree(points)
        keys = [r.key[0] for r in tree.scan((5, 0, 0), (9, 99, 99))]
        assert keys == [5, 6, 7, 8, 9]

    def test_lookup(self):
        _disk, tree = _tree([(3, 4), (5, 6)])
        assert tree.lookup((3, 4, 0)) is not None
        assert tree.lookup((3, 4, 99)) is None
        assert tree.lookup((9, 9, 0)) is None

    def test_rejects_unsorted(self):
        disk = SimulatedDisk()
        with pytest.raises(BulkloadError):
            build_rtree(
                disk, [Record.matter((2, 2, 0)), Record.matter((1, 1, 1))]
            )

    def test_rejects_non_tuple_keys(self):
        disk = SimulatedDisk()
        with pytest.raises(BulkloadError):
            build_rtree(disk, [Record.matter(5)])

    def test_min_max_keys(self):
        _disk, tree = _tree([(5, 1), (2, 9), (8, 3)])
        assert tree.min_key() == (2, 9, 0)
        assert tree.max_key() == (8, 3, 2)


X_DOMAIN = Domain(0, 999)
Y_DOMAIN = Domain(0, 999)


def _dataset(**kwargs):
    return Dataset(
        "geo",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[
            SpatialIndexSpec("loc_idx", ("x", "y"), (X_DOMAIN, Y_DOMAIN))
        ],
        **kwargs,
    )


def _doc(pk):
    return {"id": pk, "x": (pk * 7) % 1000, "y": (pk * 13) % 1000}


class TestSpatialDataset:
    def test_rectangle_counts(self):
        dataset = _dataset(memtable_capacity=64)
        for pk in range(300):
            dataset.insert(_doc(pk))
        dataset.flush()
        expected = sum(
            1
            for pk in range(300)
            if 100 <= (pk * 7) % 1000 <= 500 and 200 <= (pk * 13) % 1000 <= 700
        )
        assert dataset.count_spatial_range("loc_idx", 100, 500, 200, 700) == expected

    def test_memtable_entries_visible(self):
        dataset = _dataset()
        dataset.insert({"id": 1, "x": 10, "y": 20})
        assert dataset.count_spatial_range("loc_idx", 0, 50, 0, 50) == 1

    def test_deletes_cancel_across_components(self):
        dataset = _dataset(memtable_capacity=32)
        for pk in range(100):
            dataset.insert(_doc(pk))
        dataset.flush()
        for pk in range(0, 100, 2):
            dataset.delete(pk)
        dataset.flush()
        assert dataset.count_spatial_range("loc_idx", 0, 999, 0, 999) == 50

    def test_updates_move_points(self):
        dataset = _dataset()
        dataset.insert({"id": 1, "x": 10, "y": 10})
        dataset.flush()
        dataset.update({"id": 1, "x": 900, "y": 900})
        dataset.flush()
        assert dataset.count_spatial_range("loc_idx", 0, 100, 0, 100) == 0
        assert dataset.count_spatial_range("loc_idx", 850, 999, 850, 999) == 1

    def test_merges_preserve_spatial_queries(self):
        dataset = _dataset(
            memtable_capacity=25, merge_policy=ConstantMergePolicy(2)
        )
        for pk in range(200):
            dataset.insert(_doc(pk))
        for pk in range(0, 200, 5):
            dataset.delete(pk)
        dataset.flush()
        expected = sum(1 for pk in range(200) if pk % 5 != 0)
        assert dataset.count_spatial_range("loc_idx", 0, 999, 0, 999) == expected

    def test_wrong_index_kind(self):
        dataset = _dataset()
        with pytest.raises(QueryError):
            list(dataset.search_spatial("nope", 0, 1, 0, 1))


class TestSpatialStatistics:
    def test_2d_stats_ride_rtree_streams(self):
        from repro.core.spatial import (
            SpatialStatisticsConfig,
            SpatialStatisticsManager,
        )
        from repro.synopses.multidim import Synopsis2DType

        dataset = _dataset(memtable_capacity=64)
        manager = SpatialStatisticsManager(
            SpatialStatisticsConfig(Synopsis2DType.GROUND_TRUTH, 1)
        )
        manager.attach(dataset)
        for pk in range(400):
            dataset.insert(_doc(pk))
        for pk in range(0, 400, 3):
            dataset.delete(pk)
        dataset.flush()
        for rect in [(0, 999, 0, 999), (100, 400, 500, 800)]:
            true = dataset.count_spatial_range("loc_idx", *rect)
            assert manager.estimate(dataset, "loc_idx", *rect) == pytest.approx(true)


@settings(max_examples=25, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 63), st.integers(0, 63)), max_size=120),
    st.integers(0, 63),
    st.integers(0, 63),
    st.integers(0, 63),
    st.integers(0, 63),
)
def test_search_matches_filter_property(points, a, b, c, d):
    lo_x, hi_x = min(a, b), max(a, b)
    lo_y, hi_y = min(c, d), max(c, d)
    _disk, tree = _tree(points, leaf_capacity=6, fanout=4)
    got = sorted((r.key[0], r.key[1]) for r in tree.search(lo_x, hi_x, lo_y, hi_y))
    expected = sorted(
        (x, y) for x, y in points if lo_x <= x <= hi_x and lo_y <= y <= hi_y
    )
    assert got == expected
