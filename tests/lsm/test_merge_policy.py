"""Tests for merge policies."""

import pytest

from repro.errors import ConfigurationError
from repro.lsm.merge_policy import (
    ConstantMergePolicy,
    NoMergePolicy,
    PrefixMergePolicy,
    StackMergePolicy,
)


class _FakeBTree:
    def __init__(self, num_pages):
        self.num_pages = num_pages


class _FakeComponent:
    def __init__(self, num_pages=1):
        self.btree = _FakeBTree(num_pages)


def _components(n):
    return [_FakeComponent() for _ in range(n)]


def test_no_merge_never_selects():
    policy = NoMergePolicy()
    assert policy.select_merge(_components(100)) is None


def test_constant_policy_validates():
    with pytest.raises(ConfigurationError):
        ConstantMergePolicy(0)


def test_constant_policy_under_cap():
    policy = ConstantMergePolicy(5)
    assert policy.select_merge(_components(5)) is None


def test_constant_policy_over_cap_merges_all():
    policy = ConstantMergePolicy(5)
    comps = _components(6)
    assert policy.select_merge(comps) == comps


def test_stack_policy_validates():
    with pytest.raises(ConfigurationError):
        StackMergePolicy(1)


def test_stack_policy_selects_newest_run():
    policy = StackMergePolicy(3)
    comps = _components(5)
    assert policy.select_merge(comps) == comps[:3]
    assert policy.select_merge(_components(2)) is None


class TestPrefixPolicy:
    def test_validates(self):
        with pytest.raises(ConfigurationError):
            PrefixMergePolicy(0, 4)
        with pytest.raises(ConfigurationError):
            PrefixMergePolicy(100, 1)

    def test_under_tolerance(self):
        policy = PrefixMergePolicy(max_mergable_pages=10, max_tolerance_count=4)
        assert policy.select_merge(_components(4)) is None

    def test_merges_small_run(self):
        policy = PrefixMergePolicy(max_mergable_pages=10, max_tolerance_count=4)
        comps = _components(5)
        assert policy.select_merge(comps) == comps

    def test_large_component_ends_run(self):
        policy = PrefixMergePolicy(max_mergable_pages=10, max_tolerance_count=2)
        comps = [
            _FakeComponent(1),
            _FakeComponent(2),
            _FakeComponent(3),
            _FakeComponent(999),  # product of an earlier merge
            _FakeComponent(1),
        ]
        assert policy.select_merge(comps) == comps[:3]

    def test_run_too_short_behind_large(self):
        policy = PrefixMergePolicy(max_mergable_pages=10, max_tolerance_count=3)
        comps = [_FakeComponent(1), _FakeComponent(999), _FakeComponent(1)]
        assert policy.select_merge(comps) is None

    def test_integration_with_tree(self):
        from repro.lsm.storage import SimulatedDisk
        from repro.lsm.tree import LSMTree

        tree = LSMTree(
            "t",
            SimulatedDisk(),
            memtable_capacity=32,
            merge_policy=PrefixMergePolicy(
                max_mergable_pages=4, max_tolerance_count=3
            ),
        )
        for i in range(1000):
            tree.upsert(i, i)
        tree.flush()
        assert tree.merge_count > 0
        assert tree.count_range() == 1000


class _SlotComponent(_FakeComponent):
    """Fake with the ``uid`` identity the slot accounting keys on."""

    _next_uid = 0

    def __init__(self, num_pages=1):
        super().__init__(num_pages)
        self.uid = _SlotComponent._next_uid
        _SlotComponent._next_uid += 1


def _slot_components(n):
    return [_SlotComponent() for _ in range(n)]


class TestMergeSlots:
    """acquire_merge/release_merge: no component is ever selected by
    two overlapping merges (the concurrency fix's regression net)."""

    def test_acquire_claims_and_blocks_reselection(self):
        policy = ConstantMergePolicy(3)
        comps = _slot_components(4)
        selected = policy.acquire_merge(comps)
        assert selected == comps
        assert policy.in_flight_count == 4
        # The same components must not be handed to a second merge.
        assert policy.acquire_merge(comps) is None

    def test_release_frees_the_slots(self):
        policy = ConstantMergePolicy(3)
        comps = _slot_components(4)
        selected = policy.acquire_merge(comps)
        policy.release_merge(selected)
        assert policy.in_flight_count == 0
        assert policy.acquire_merge(comps) == comps

    def test_eligibility_stops_at_first_busy_component(self):
        # Contiguity: nothing *older* than a busy component may merge
        # with anything newer, so eligibility is the newest-first prefix.
        policy = StackMergePolicy(2)
        comps = _slot_components(5)
        first = policy.acquire_merge(comps)
        assert first == comps[:2]
        second = policy.acquire_merge(comps)
        assert second is None  # prefix stops at comps[0]: still busy
        policy.release_merge(first)
        assert policy.acquire_merge(comps) == comps[:2]

    def test_acquire_returns_none_when_policy_declines(self):
        policy = ConstantMergePolicy(5)
        assert policy.acquire_merge(_slot_components(3)) is None
        assert policy.in_flight_count == 0

    def test_concurrent_acquires_never_double_claim(self):
        import threading

        policy = StackMergePolicy(2)
        comps = _slot_components(8)
        claims = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            selection = policy.acquire_merge(comps)
            if selection is not None:
                claims.append(selection)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        claimed_uids = [c.uid for selection in claims for c in selection]
        assert len(claimed_uids) == len(set(claimed_uids))
        for selection in claims:
            policy.release_merge(selection)
        assert policy.in_flight_count == 0
