"""Tests for the LSMTree: lifecycle, reconciliation, events."""

import pytest

from repro.errors import BulkloadError, StorageError
from repro.lsm.component import ComponentState
from repro.lsm.events import EventBus, LSMEventType
from repro.lsm.merge_policy import ConstantMergePolicy, StackMergePolicy
from repro.lsm.record import Record
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree


def _tree(**kwargs):
    return LSMTree("t.primary", SimulatedDisk(), **kwargs)


class TestWriteRead:
    def test_get_from_memtable(self):
        t = _tree()
        t.upsert(1, "a")
        assert t.get(1) == "a"

    def test_get_missing(self):
        t = _tree()
        assert t.get(1) is None

    def test_update_in_memtable(self):
        t = _tree()
        t.upsert(1, "a")
        t.upsert(1, "b")
        assert t.get(1) == "b"

    def test_delete_in_memtable(self):
        t = _tree()
        t.upsert(1, "a")
        t.delete(1)
        assert t.get(1) is None

    def test_get_from_disk_component(self):
        t = _tree()
        t.upsert(1, "a")
        t.flush()
        assert t.get(1) == "a"

    def test_update_shadows_disk_version(self):
        t = _tree()
        t.upsert(1, "old")
        t.flush()
        t.upsert(1, "new")
        assert t.get(1) == "new"
        t.flush()
        assert t.get(1) == "new"

    def test_delete_shadows_disk_version(self):
        t = _tree()
        t.upsert(1, "a")
        t.flush()
        t.delete(1)
        assert t.get(1) is None
        t.flush()
        assert t.get(1) is None


class TestFlush:
    def test_flush_empty_is_noop(self):
        t = _tree()
        assert t.flush() is None
        assert t.components == []

    def test_flush_creates_component(self):
        t = _tree()
        t.upsert(2, "b")
        t.upsert(1, "a")
        component = t.flush()
        assert component.matter_count == 2
        assert component.antimatter_count == 0
        assert len(t.memtable) == 0
        assert [r.key for r in component.scan()] == [1, 2]

    def test_flush_includes_antimatter(self):
        t = _tree()
        t.upsert(1, "a")
        t.flush()
        t.delete(1)
        component = t.flush()
        assert component.antimatter_count == 1
        assert component.matter_count == 0

    def test_auto_flush_at_capacity(self):
        t = _tree(memtable_capacity=10)
        for i in range(25):
            t.upsert(i, i)
        assert t.flush_count == 2
        assert len(t.memtable) == 5

    def test_component_id_tracks_seqnums(self):
        t = _tree()
        t.upsert(1, "a")  # seq 0
        t.upsert(2, "b")  # seq 1
        c1 = t.flush()
        t.upsert(3, "c")  # seq 2
        c2 = t.flush()
        assert (c1.component_id.min_seq, c1.component_id.max_seq) == (0, 1)
        assert (c2.component_id.min_seq, c2.component_id.max_seq) == (2, 2)


class TestScan:
    def test_scan_across_components(self):
        t = _tree()
        t.upsert(1, "a")
        t.flush()
        t.upsert(3, "c")
        t.flush()
        t.upsert(2, "b")  # stays in memtable
        assert [r.key for r in t.scan()] == [1, 2, 3]

    def test_scan_reconciles_deletes(self):
        t = _tree()
        for i in range(10):
            t.upsert(i, i)
        t.flush()
        for i in range(0, 10, 2):
            t.delete(i)
        t.flush()
        assert [r.key for r in t.scan()] == [1, 3, 5, 7, 9]

    def test_count_range(self):
        t = _tree()
        for i in range(100):
            t.upsert(i, i)
        t.flush()
        assert t.count_range(10, 19) == 10
        assert t.count_range() == 100
        assert len(t) == 100


class TestMerge:
    def test_full_merge_reconciles_antimatter(self):
        """The paper's Figure 10: <A> in DC1, anti-<A> in DC2, merge
        produces DC3 with no trace of A."""
        t = _tree()
        t.upsert("A", 1)
        dc1 = t.flush()
        t.delete("A")
        dc2 = t.flush()
        dc3 = t.merge([dc1, dc2])
        assert dc3.record_count == 0
        assert t.get("A") is None
        assert dc1.state is ComponentState.DELETED
        assert dc2.state is ComponentState.DELETED
        assert t.components == [dc3]

    def test_partial_merge_keeps_antimatter(self):
        t = _tree()
        t.upsert("A", 1)
        c_old = t.flush()
        t.upsert("B", 2)
        c_mid = t.flush()
        t.delete("A")
        c_new = t.flush()
        merged = t.merge([c_mid, c_new])  # excludes oldest
        assert merged.antimatter_count == 1  # tombstone for A carried
        assert merged.matter_count == 1  # B
        assert t.get("A") is None  # still cancelled through the tombstone
        assert t.components == [merged, c_old]

    def test_merge_noncontiguous_rejected(self):
        t = _tree()
        cs = []
        for i in range(3):
            t.upsert(i, i)
            cs.append(t.flush())
        newest, _middle, oldest = t.components
        with pytest.raises(StorageError):
            t.merge([newest, oldest])

    def test_merge_zero_components_rejected(self):
        t = _tree()
        with pytest.raises(StorageError):
            t.merge([])

    def test_merge_updates_component_id(self):
        t = _tree()
        t.upsert(1, "a")
        c1 = t.flush()
        t.upsert(2, "b")
        c2 = t.flush()
        merged = t.merge([c1, c2])
        assert merged.component_id.min_seq == c1.component_id.min_seq
        assert merged.component_id.max_seq == c2.component_id.max_seq

    def test_constant_policy_caps_components(self):
        t = _tree(memtable_capacity=5, merge_policy=ConstantMergePolicy(3))
        for i in range(100):
            t.upsert(i, i)
        assert len(t.components) <= 3
        assert t.merge_count > 0
        assert t.count_range() == 100

    def test_stack_policy_partial_merges_preserve_reads(self):
        t = _tree(memtable_capacity=4, merge_policy=StackMergePolicy(3))
        for i in range(50):
            t.upsert(i, i)
        for i in range(0, 50, 5):
            t.delete(i)
        t.flush()
        live = [r.key for r in t.scan()]
        assert live == [i for i in range(50) if i % 5 != 0]


class TestBulkload:
    def test_bulkload_builds_single_component(self):
        t = _tree()
        t.bulkload((Record.matter(i, i) for i in range(100)), expected_records=100)
        assert len(t.components) == 1
        assert t.count_range() == 100
        assert t.get(42) == 42

    def test_bulkload_into_nonempty_rejected(self):
        t = _tree()
        t.upsert(1, "a")
        with pytest.raises(BulkloadError):
            t.bulkload([Record.matter(2)], expected_records=1)

    def test_bulkload_rejects_antimatter(self):
        t = _tree()
        with pytest.raises(BulkloadError):
            t.bulkload(iter([Record.anti(1)]), expected_records=1)


class TestEvents:
    class _Recorder:
        def __init__(self):
            self.contexts = []
            self.records = []
            self.components = []
            self.replacements = []

        def begin_component_write(self, context):
            self.contexts.append(context)
            recorder = self

            class Sink:
                def accept(self, record):
                    recorder.records.append(record)

                def finish(self, component):
                    recorder.components.append(component)

            return Sink()

        def component_replaced(self, index_name, old, new):
            self.replacements.append((index_name, old, new))

    def test_flush_event_taps_stream(self):
        bus = EventBus()
        recorder = self._Recorder()
        bus.subscribe(recorder)
        t = LSMTree("idx", SimulatedDisk(), event_bus=bus)
        for i in range(5):
            t.upsert(i, i)
        t.flush()
        (ctx,) = recorder.contexts
        assert ctx.event_type is LSMEventType.FLUSH
        assert ctx.index_name == "idx"
        assert ctx.expected_records == 5
        assert [r.key for r in recorder.records] == list(range(5))
        assert len(recorder.components) == 1

    def test_merge_event_announces_replacement(self):
        bus = EventBus()
        recorder = self._Recorder()
        bus.subscribe(recorder)
        t = LSMTree("idx", SimulatedDisk(), event_bus=bus)
        t.upsert(1, "a")
        c1 = t.flush()
        t.upsert(2, "b")
        c2 = t.flush()
        merged = t.merge([c1, c2])
        merge_ctx = recorder.contexts[-1]
        assert merge_ctx.event_type is LSMEventType.MERGE
        # Merged inputs are reported newest first.
        assert merge_ctx.merged_components == (c2, c1)
        assert merge_ctx.expected_records == 2
        ((name, old, new),) = recorder.replacements
        assert name == "idx"
        assert old == (c2, c1)
        assert new is merged

    def test_unsubscribe(self):
        bus = EventBus()
        recorder = self._Recorder()
        bus.subscribe(recorder)
        bus.unsubscribe(recorder)
        t = LSMTree("idx", SimulatedDisk(), event_bus=bus)
        t.upsert(1, "a")
        t.flush()
        assert recorder.contexts == []
