"""The batched component-write path vs. the per-record fallback.

``write_batch_size=None`` keeps the original per-record tap/build
pipeline; any positive batch size switches flush/merge/bulkload to
chunk-at-a-time draining.  Both must produce identical components
(same records, same scans) and identical observer traffic -- the
statistics piggybacking contract is that batching changes *cost*,
never *content*.
"""

import pytest

from repro.core.collector import StatisticsCollector
from repro.core.config import StatisticsConfig
from repro.errors import StorageError, SynopsisError
from repro.lsm.btree import build_btree, build_btree_chunks
from repro.lsm.events import EventBus, accept_batch
from repro.lsm.record import Record
from repro.lsm.storage import SimulatedDisk
from repro.lsm.tree import LSMTree
from repro.synopses.base import SynopsisType
from repro.types import Domain

DOMAIN = Domain(0, 4095)
BATCH_SIZES = [None, 512, 7, 1]


class _CaptureSink:
    """Records publish/retract traffic, uid-free.

    Component uids come from a process-global counter, so they differ
    between otherwise identical runs; comparisons use payloads only.
    """

    def __init__(self):
        self.events = []

    def publish(self, index_name, component_uid, synopsis, anti_synopsis):
        self.events.append(
            ("publish", index_name, synopsis.to_payload(), anti_synopsis.to_payload())
        )

    def retract(self, index_name, component_uids):
        self.events.append(("retract", index_name, len(component_uids)))


def _scripted_run(write_batch_size):
    """One full lifecycle: upserts, deletes, flushes, and a merge."""
    tree = LSMTree(
        "t.primary",
        SimulatedDisk(),
        memtable_capacity=4096,
        event_bus=EventBus(),
        auto_flush=False,
        write_batch_size=write_batch_size,
    )
    sink = _CaptureSink()
    collector = StatisticsCollector(
        StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32), sink
    )
    collector.register_index(tree.name, DOMAIN)
    tree.event_bus.subscribe(collector)
    for key in range(0, 600, 2):
        tree.upsert(key, {"k": key})
    tree.flush()
    for key in range(100, 300):
        tree.upsert(key, {"k": -key})
    for key in range(0, 100, 4):
        tree.delete(key)
    tree.flush()
    tree.merge(tree.components)
    scan = [(r.key, r.antimatter) for r in tree.scan()]
    return sink.events, scan, tree.observer_failures


class TestBatchedEquivalence:
    def test_scripted_lifecycle_identical_across_batch_sizes(self):
        reference = _scripted_run(None)
        for batch in BATCH_SIZES[1:]:
            assert _scripted_run(batch) == reference, batch

    @pytest.mark.parametrize("batch", BATCH_SIZES, ids=str)
    def test_bulkload_synopses_and_scan(self, batch):
        def run(size):
            tree = LSMTree(
                "t.primary",
                SimulatedDisk(),
                event_bus=EventBus(),
                write_batch_size=size,
            )
            sink = _CaptureSink()
            collector = StatisticsCollector(
                StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32), sink
            )
            collector.register_index(tree.name, DOMAIN)
            tree.event_bus.subscribe(collector)
            tree.bulkload(
                (Record.matter(key) for key in range(0, 3000, 3)),
                expected_records=1000,
            )
            return sink.events, [r.key for r in tree.scan()]

        assert run(batch) == run(None)

    def test_write_batch_size_validated(self):
        with pytest.raises(StorageError, match="write_batch_size"):
            LSMTree("t", SimulatedDisk(), write_batch_size=0)


class TestChunkedBTreeBuilder:
    def test_chunked_build_matches_per_record(self):
        records = [Record.matter(key) for key in range(1000)]
        flat = build_btree(SimulatedDisk(), iter(records))

        def chunks():
            for start in range(0, len(records), 64):
                yield records[start : start + 64]

        chunked = build_btree_chunks(SimulatedDisk(), chunks())
        assert [r.key for r in chunked.scan()] == [r.key for r in flat.scan()]
        assert chunked.num_records == flat.num_records
        assert chunked.lookup(517).key == 517
        assert chunked.lookup(-1) is None

    def test_chunked_build_rejects_unsorted_input(self):
        from repro.errors import BulkloadError

        records = [Record.matter(2), Record.matter(1)]
        with pytest.raises(BulkloadError):
            build_btree_chunks(SimulatedDisk(), iter([records]))

    def test_unsorted_across_chunk_boundary_rejected(self):
        from repro.errors import BulkloadError

        with pytest.raises(BulkloadError):
            build_btree_chunks(
                SimulatedDisk(),
                iter([[Record.matter(5)], [Record.matter(4)]]),
            )


class TestBatchedFaultIsolation:
    def test_failing_batched_sink_dropped_not_fatal(self):
        class _ExplodingObserver:
            def begin_component_write(self, context):
                class _Sink:
                    def accept_many(self, records):
                        raise RuntimeError("boom")

                    def accept(self, record):
                        raise RuntimeError("boom")

                    def finish(self, component):
                        pass

                return _Sink()

        tree = LSMTree(
            "t.primary",
            SimulatedDisk(),
            event_bus=EventBus(),
            auto_flush=False,
            write_batch_size=8,
        )
        tree.event_bus.subscribe(_ExplodingObserver())
        for key in range(100):
            tree.upsert(key)
        tree.flush()
        assert [r.key for r in tree.scan()] == list(range(100))
        assert tree.observer_failures >= 1


class TestAcceptBatch:
    def test_prefers_accept_many(self):
        calls = []

        class _Batched:
            def accept(self, record):
                calls.append(("one", record.key))

            def accept_many(self, records):
                calls.append(("many", len(records)))

        accept_batch(_Batched(), [Record.matter(1), Record.matter(2)])
        assert calls == [("many", 2)]

    def test_falls_back_to_per_record(self):
        calls = []

        class _Plain:
            def accept(self, record):
                calls.append(record.key)

        accept_batch(_Plain(), [Record.matter(1), Record.matter(2)])
        assert calls == [1, 2]


class TestCollectorBatchedTap:
    def test_accept_many_matches_accept(self):
        def run(batched):
            sink = _CaptureSink()
            collector = StatisticsCollector(
                StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32), sink
            )
            collector.register_index("idx", DOMAIN)
            from repro.lsm.events import ComponentWriteContext, LSMEventType

            context = ComponentWriteContext(
                index_name="idx",
                event_type=LSMEventType.FLUSH,
                expected_records=6,
                key_extractor=lambda record: record.key,
            )
            tap = collector.begin_component_write(context)
            records = [
                Record.matter(1),
                Record.anti(2),
                Record.matter(3),
                Record.matter(5),
                Record.anti(8),
                Record.matter(9),
            ]
            if batched:
                tap.accept_many(records[:3])
                tap.accept_many(records[3:])
            else:
                for record in records:
                    tap.accept(record)

            class _Component:
                uid = 0

            tap.finish(_Component())
            counts = (
                collector.metrics.matter_records_observed,
                collector.metrics.antimatter_records_observed,
            )
            return sink.events, counts

        assert run(batched=True) == run(batched=False)

    def test_sorted_family_rejects_unsorted_batch(self):
        sink = _CaptureSink()
        collector = StatisticsCollector(
            StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32), sink
        )
        collector.register_index("idx", DOMAIN)
        from repro.lsm.events import ComponentWriteContext, LSMEventType

        context = ComponentWriteContext(
            index_name="idx",
            event_type=LSMEventType.FLUSH,
            expected_records=2,
            key_extractor=lambda record: record.key,
        )
        tap = collector.begin_component_write(context)
        with pytest.raises(SynopsisError):
            tap.accept_many([Record.matter(9), Record.matter(3)])
