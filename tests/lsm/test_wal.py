"""Tests for the per-partition write-ahead log."""

import pytest

from repro.errors import WALError
from repro.lsm.record import Record
from repro.lsm.storage import SimulatedDisk
from repro.lsm.wal import WriteAheadLog


def _records(log):
    return [(seq, tree, rec) for seq, tree, rec in log.replay()]


def test_append_and_replay_round_trip():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0")
    log.append("t", Record.matter(1, {"v": 10}, seqnum=0))
    log.append("t", Record.anti(1, seqnum=1))
    replayed = _records(log)
    assert [(seq, tree) for seq, tree, _rec in replayed] == [(0, "t"), (1, "t")]
    assert replayed[0][2].value == {"v": 10}
    assert replayed[1][2].antimatter


def test_op_atomic_entry_spans_trees():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0")
    log.log_op(
        5,
        [
            ("primary", Record.matter(1, {"v": 10}, seqnum=5)),
            ("secondary", Record.matter((10, 1), None, seqnum=5)),
        ],
    )
    replayed = _records(log)
    assert [(seq, tree) for seq, tree, _rec in replayed] == [
        (5, "primary"),
        (5, "secondary"),
    ]


def test_default_group_size_commits_every_op():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0")
    log.append("t", Record.matter(1, None, seqnum=0))
    assert log.pending_ops == 0  # acknowledged == durable


def test_group_commit_buffers_until_full():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0", group_size=3)
    log.append("t", Record.matter(1, None, seqnum=0))
    log.append("t", Record.matter(2, None, seqnum=1))
    assert log.pending_ops == 2
    assert _records(log) == []  # nothing durable yet
    log.append("t", Record.matter(3, None, seqnum=2))
    assert log.pending_ops == 0
    assert len(_records(log)) == 3


def test_sync_flushes_partial_group():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0", group_size=10)
    log.append("t", Record.matter(1, None, seqnum=0))
    log.sync()
    assert log.pending_ops == 0
    assert len(_records(log)) == 1


def test_truncate_starts_fresh_file_and_deletes_old():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0")
    log.append("t", Record.matter(1, None, seqnum=0))
    old_file = log.file_id
    log.truncate()
    assert log.file_id != old_file
    assert disk.superblock["wal:ds.p0"] == log.file_id
    assert old_file not in disk.live_file_ids()
    assert _records(log) == []


def test_truncate_refuses_uncommitted_ops():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0", group_size=10)
    log.append("t", Record.matter(1, None, seqnum=0))
    with pytest.raises(WALError):
        log.truncate()


def test_recover_reopens_superblock_file():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0")
    log.append("t", Record.matter(1, {"v": 10}, seqnum=0))
    # A new process: only the disk survives.
    reopened = WriteAheadLog(disk, "ds.p0", recover=True)
    assert reopened.file_id == log.file_id
    replayed = _records(reopened)
    assert len(replayed) == 1
    assert replayed[0][2].value == {"v": 10}


def test_recover_without_superblock_entry_starts_fresh():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "other", recover=True)
    assert _records(log) == []


def test_replay_detects_corruption():
    disk = SimulatedDisk()
    log = WriteAheadLog(disk, "ds.p0")
    log.append("t", Record.matter(1, None, seqnum=0))
    page = disk.read_page(log.file_id, 0)
    page["crc"] ^= 1  # bit rot
    with pytest.raises(WALError, match="checksum"):
        _records(log)


def test_rejects_bad_group_size():
    with pytest.raises(WALError):
        WriteAheadLog(SimulatedDisk(), "ds.p0", group_size=0)
