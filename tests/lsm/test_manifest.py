"""Tests for the component manifest and its replay semantics."""

import pytest

from repro.errors import ManifestError
from repro.lsm.manifest import ComponentDescriptor, Manifest
from repro.lsm.storage import SimulatedDisk


def _descriptor(tree, file_id, min_seq=0, max_seq=9, matter=10, anti=0):
    return ComponentDescriptor(
        tree=tree,
        min_seq=min_seq,
        max_seq=max_seq,
        matter_count=matter,
        antimatter_count=anti,
        expected_records=matter + anti,
        btree={"file_id": file_id, "fanout": 64, "num_records": matter + anti},
        ordinal=-1,
    )


def test_commit_without_begin_still_replays():
    # Begin entries are intent markers; the commit alone installs.
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    manifest.commit("flush", "t", _descriptor("t", file_id=7))
    state = manifest.replay()
    assert [d.file_id for d in state.components["t"]] == [7]


def test_begin_without_commit_installs_nothing():
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    manifest.begin("flush", "t")
    assert manifest.replay().components == {}


def test_components_ordered_newest_first():
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    manifest.commit("flush", "t", _descriptor("t", file_id=1, min_seq=0, max_seq=4))
    manifest.commit("flush", "t", _descriptor("t", file_id=2, min_seq=5, max_seq=9))
    state = manifest.replay()
    assert [d.file_id for d in state.components["t"]] == [2, 1]
    # Ordinals preserve creation order for uid-rank reconstruction.
    assert [d.file_id for d in state.descriptors_by_ordinal()] == [1, 2]


def test_merge_commit_splices_replaced_run():
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    for file_id in (1, 2, 3):
        manifest.commit("flush", "t", _descriptor("t", file_id=file_id))
    manifest.begin("merge", "t", payload={"inputs": [1, 2]})
    manifest.commit(
        "merge", "t", _descriptor("t", file_id=9), replaces=(1, 2)
    )
    state = manifest.replay()
    assert [d.file_id for d in state.components["t"]] == [3, 9]
    assert state.live_file_ids() == {3, 9}


def test_merge_of_unknown_inputs_is_rejected():
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    manifest.commit("flush", "t", _descriptor("t", file_id=1))
    manifest.commit("merge", "t", _descriptor("t", file_id=9), replaces=(1, 42))
    with pytest.raises(ManifestError):
        manifest.replay()


def test_uncommitted_txn_voids_its_component_commits():
    # A dataset flush commits each tree's component under one txn;
    # without the txn.commit entry the whole flush must vanish.
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    txn = manifest.begin_txn()
    manifest.commit("flush", "a", _descriptor("a", file_id=1), txn=txn)
    manifest.commit("flush", "b", _descriptor("b", file_id=2), txn=txn)
    assert manifest.replay().components == {}
    manifest.commit_txn(txn)
    state = manifest.replay()
    assert state.live_file_ids() == {1, 2}
    assert txn in state.committed_txns


def test_txn_ids_resume_after_recovery():
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    txn = manifest.begin_txn()
    manifest.commit_txn(txn)
    recovered = Manifest(disk, "ds.p0", recover=True)
    assert recovered.begin_txn() > txn


def test_recover_reopens_superblock_file():
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    manifest.commit("flush", "t", _descriptor("t", file_id=4))
    recovered = Manifest(disk, "ds.p0", recover=True)
    assert recovered.file_id == manifest.file_id
    assert recovered.replay().live_file_ids() == {4}


def test_replay_detects_corruption():
    disk = SimulatedDisk()
    manifest = Manifest(disk, "ds.p0")
    manifest.commit("flush", "t", _descriptor("t", file_id=4))
    page = disk.read_page(manifest.file_id, 0)
    page["crc"] ^= 1
    with pytest.raises(ManifestError, match="checksum"):
        manifest.replay()


def test_unknown_event_rejected():
    manifest = Manifest(SimulatedDisk(), "ds.p0")
    with pytest.raises(ManifestError):
        manifest.begin("compact", "t")
    with pytest.raises(ManifestError):
        manifest.commit("compact", "t", _descriptor("t", file_id=1))
