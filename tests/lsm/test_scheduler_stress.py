"""Thread-stress suite: real workers, real preemption, hard invariants.

N writer threads ingest into one dataset while M reader threads scan and
point-look-up concurrently with background flushes and merges on a
:class:`ThreadPoolScheduler`.  The invariants are the snapshot-isolation
contract:

* a reader never observes a half-spliced component list -- every scan
  yields strictly increasing, duplicate-free keys and never raises;
* component refcounts return to zero once readers and maintenance are
  done, and no component is destroyed while pinned (scans over MERGED
  components must complete);
* the final state equals the model regardless of the interleaving.

``faulthandler`` arms a watchdog per test so a deadlock produces thread
tracebacks instead of a silent CI hang.
"""

import faulthandler
import threading

import pytest

from repro.lsm.component import ComponentState
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.scheduler import ThreadPoolScheduler
from repro.lsm.storage import SimulatedDisk
from repro.obs.registry import MetricsRegistry, use_registry
from repro.types import Domain

WRITERS = 4
READERS = 3
RECORDS_PER_WRITER = 300
STRESS_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def watchdog():
    """Dump all-thread tracebacks if a stress test wedges."""
    faulthandler.dump_traceback_later(STRESS_TIMEOUT, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def _build(registry):
    scheduler = ThreadPoolScheduler(max_workers=3, registry=registry)
    dataset = Dataset(
        "stress",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=64,
        merge_policy=ConstantMergePolicy(max_components=3),
        scheduler=scheduler,
    )
    return dataset, scheduler


def test_writers_and_readers_race_background_maintenance():
    registry = MetricsRegistry()
    with use_registry(registry):
        dataset, scheduler = _build(registry)
        stop = threading.Event()
        errors = []

        def writer(base):
            try:
                for offset in range(RECORDS_PER_WRITER):
                    pk = base + offset
                    dataset.insert({"id": pk, "value": pk % 1024})
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(("writer", base, repr(exc)))

        def reader():
            try:
                while not stop.is_set():
                    previous = None
                    for record in dataset.primary.scan():
                        key = record.key
                        if previous is not None and key <= previous:
                            errors.append(
                                ("reader", "unsorted-or-duplicate", key)
                            )
                            return
                        previous = key
                    # Point reads race the component splice too.
                    document = dataset.get(17)
                    if document is not None and document["id"] != 17:
                        errors.append(("reader", "wrong-document", document))
                        return
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(("reader", "raised", repr(exc)))

        writer_threads = [
            threading.Thread(target=writer, args=(index * 10_000,))
            for index in range(WRITERS)
        ]
        reader_threads = [
            threading.Thread(target=reader) for _ in range(READERS)
        ]
        for thread in reader_threads + writer_threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=STRESS_TIMEOUT)
        stop.set()
        for thread in reader_threads:
            thread.join(timeout=STRESS_TIMEOUT)
        assert not any(t.is_alive() for t in writer_threads + reader_threads)

        dataset.flush()  # drain barrier under concurrent schedulers
        dataset.drain_maintenance()
        scheduler.shutdown()

        assert errors == []
        assert dataset.count_records() == WRITERS * RECORDS_PER_WRITER
        expected = sorted(
            index * 10_000 + offset
            for index in range(WRITERS)
            for offset in range(RECORDS_PER_WRITER)
        )
        assert [r.key for r in dataset.primary.scan()] == expected

        # Refcounts returned to zero; only ACTIVE components survive in
        # the tree, and none of them was GC'd while pinned.
        for tree in (dataset.primary, dataset.secondary_tree("value_idx")):
            for component in tree.components:
                assert component.state is ComponentState.ACTIVE
                assert not component.pinned
        assert dataset.primary.merge_policy.in_flight_count == 0

    counters = registry.snapshot()["counters"]
    assert counters["scheduler.tasks.submitted"] > 0
    assert (
        counters["scheduler.tasks.completed"]
        == counters["scheduler.tasks.submitted"]
    )
    assert counters.get("scheduler.tasks.failed", 0) == 0


def test_pinned_component_survives_merge_until_unpin():
    """A reader's pin defers file GC: merging a pinned component marks
    it MERGED (still readable) and only the last unpin destroys it."""
    registry = MetricsRegistry()
    with use_registry(registry):
        dataset, scheduler = _build(registry)
        for pk in range(256):
            dataset.insert({"id": pk, "value": pk % 1024})
        dataset.flush()
        dataset.drain_maintenance()
        victim = dataset.primary.components[0]
        victim.pin()
        try:
            # Enough further traffic to merge the pinned component away.
            for pk in range(256, 768):
                dataset.insert({"id": pk, "value": pk % 1024})
            dataset.flush()
            dataset.drain_maintenance()
            assert victim.state in (
                ComponentState.ACTIVE,
                ComponentState.MERGED,
            )
            if victim.state is ComponentState.MERGED:
                # Still readable while pinned: the snapshot contract.
                assert victim.record_count >= 0
        finally:
            victim.unpin()
        assert victim.state is not ComponentState.DELETED or not victim.pinned
        scheduler.shutdown()


def test_concurrent_flush_barriers_from_many_threads():
    """flush() doubles as the drain barrier; hammering it from several
    threads while writers run must neither deadlock nor fail tasks."""
    registry = MetricsRegistry()
    with use_registry(registry):
        dataset, scheduler = _build(registry)
        errors = []

        def writer(base):
            try:
                for offset in range(200):
                    dataset.insert(
                        {"id": base + offset, "value": offset % 1024}
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        def flusher():
            try:
                for _ in range(5):
                    dataset.flush()
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=writer, args=(index * 10_000,))
            for index in range(3)
        ] + [threading.Thread(target=flusher) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=STRESS_TIMEOUT)
        assert not any(t.is_alive() for t in threads)
        dataset.flush()
        dataset.drain_maintenance()
        scheduler.shutdown()
        assert errors == []
        assert dataset.count_records() == 3 * 200
    counters = registry.snapshot()["counters"]
    assert counters.get("scheduler.tasks.failed", 0) == 0
