"""Unit tests for the maintenance scheduler (all three modes).

Covers the contract the engine's determinism argument rests on: lane
FIFO, ``front=True`` continuations, seeded replayability of the virtual
mode, off-thread failure capture, and the backpressure ``wait`` hook.
"""

import threading

import pytest

from repro.errors import ConfigurationError, SchedulerError
from repro.lsm.scheduler import (
    DEFAULT_MAX_WORKERS,
    SCHEDULER_MODES,
    SyncScheduler,
    ThreadPoolScheduler,
    VirtualScheduler,
    make_scheduler,
)
from repro.obs.registry import MetricsRegistry


class _Boom(Exception):
    pass


class _FakeCrash(BaseException):
    """Stands in for SimulatedCrash: a non-Exception BaseException."""


def _registry():
    return MetricsRegistry()


# ---------------------------------------------------------------- factory


def test_make_scheduler_dispatches_every_mode():
    for mode in SCHEDULER_MODES:
        scheduler = make_scheduler(mode, registry=_registry())
        assert scheduler.mode == mode
        scheduler.shutdown()


def test_make_scheduler_rejects_unknown_mode():
    with pytest.raises(ConfigurationError, match="unknown scheduler mode"):
        make_scheduler("fibers", registry=_registry())


def test_thread_pool_rejects_zero_workers():
    with pytest.raises(ConfigurationError):
        ThreadPoolScheduler(max_workers=0, registry=_registry())


# ------------------------------------------------------------------- sync


def test_sync_runs_inline_and_raises_at_submit():
    scheduler = SyncScheduler(registry=_registry())
    assert scheduler.inline
    ran = []
    scheduler.submit(lambda: ran.append(1))
    assert ran == [1]
    assert scheduler.pending_count() == 0
    with pytest.raises(_Boom):
        scheduler.submit(lambda: (_ for _ in ()).throw(_Boom()))


# ---------------------------------------------------------------- virtual


def test_virtual_defers_until_stepped():
    scheduler = VirtualScheduler(registry=_registry())
    ran = []
    scheduler.submit(lambda: ran.append("a"))
    scheduler.submit(lambda: ran.append("b"))
    assert ran == []
    assert scheduler.pending_count() == 2
    assert scheduler.step()
    assert len(ran) == 1
    scheduler.drain()
    assert sorted(ran) == ["a", "b"]
    assert not scheduler.step()  # idle


def test_virtual_lane_is_fifo_and_front_jumps_the_queue():
    scheduler = VirtualScheduler(registry=_registry())
    ran = []
    scheduler.submit(lambda: ran.append(1), lane="l")
    scheduler.submit(lambda: ran.append(2), lane="l")
    scheduler.submit(lambda: ran.append(0), lane="l", front=True)
    scheduler.drain()
    assert ran == [0, 1, 2]


def test_virtual_same_seed_replays_same_interleaving():
    def run(seed):
        scheduler = VirtualScheduler(seed=seed, registry=_registry())
        order = []
        for lane in ("a", "b", "c"):
            for index in range(4):
                scheduler.submit(
                    lambda lane=lane, index=index: order.append(
                        (lane, index)
                    ),
                    lane=lane,
                )
        scheduler.drain()
        return order

    assert run(7) == run(7)
    # Lane-internal order is FIFO regardless of the interleaving drawn.
    for order in (run(7), run(8)):
        for lane in ("a", "b", "c"):
            assert [i for ln, i in order if ln == lane] == [0, 1, 2, 3]
    # At least one seed pair interleaves the lanes differently.
    assert any(run(0) != run(seed) for seed in range(1, 20))


def test_virtual_failure_raises_at_the_step_that_ran_it():
    scheduler = VirtualScheduler(registry=_registry())
    scheduler.submit(lambda: (_ for _ in ()).throw(_Boom()))
    with pytest.raises(_Boom):
        scheduler.drain()


def test_virtual_wait_runs_pending_tasks_until_predicate_holds():
    registry = _registry()
    scheduler = VirtualScheduler(registry=registry)
    state = []
    for _ in range(3):
        scheduler.submit(lambda: state.append(1))
    scheduler.wait(lambda: len(state) >= 2)
    assert len(state) == 2
    assert scheduler.pending_count() == 1
    assert registry.snapshot()["counters"]["scheduler.stalls"] == 1


def test_virtual_wait_returns_when_idle_and_predicate_still_false():
    scheduler = VirtualScheduler(registry=_registry())
    scheduler.wait(lambda: False)  # must not hang


# ---------------------------------------------------------------- threads


def test_threads_runs_off_the_calling_thread():
    scheduler = ThreadPoolScheduler(registry=_registry())
    try:
        threads = []
        scheduler.submit(lambda: threads.append(threading.current_thread()))
        scheduler.drain()
        assert threads and threads[0] is not threading.main_thread()
    finally:
        scheduler.shutdown()


def test_threads_lane_never_runs_two_tasks_concurrently():
    scheduler = ThreadPoolScheduler(max_workers=4, registry=_registry())
    try:
        active = 0
        overlap = []
        order = []
        guard = threading.Lock()

        def task(index):
            nonlocal active
            with guard:
                active += 1
                if active > 1:
                    overlap.append(index)
            order.append(index)
            with guard:
                active -= 1

        for index in range(50):
            scheduler.submit(lambda index=index: task(index), lane="only")
        scheduler.drain()
        assert overlap == []
        assert order == list(range(50))  # FIFO survived real threads
    finally:
        scheduler.shutdown()


def test_threads_failure_is_captured_and_reraised_at_drain():
    scheduler = ThreadPoolScheduler(registry=_registry())
    try:
        scheduler.submit(lambda: (_ for _ in ()).throw(_Boom("bg")))
        with pytest.raises(SchedulerError, match="maintenance task"):
            scheduler.drain()
        scheduler.drain()  # failures are consumed: second drain is clean
    finally:
        scheduler.shutdown()


def test_threads_base_exception_is_reraised_raw():
    scheduler = ThreadPoolScheduler(registry=_registry())
    try:
        def die():
            raise _FakeCrash()

        scheduler.submit(die)
        with pytest.raises(_FakeCrash):
            scheduler.drain()
    finally:
        scheduler.shutdown()


def test_threads_submit_after_shutdown_raises():
    scheduler = ThreadPoolScheduler(registry=_registry())
    scheduler.shutdown()
    with pytest.raises(SchedulerError, match="shut-down"):
        scheduler.submit(lambda: None)


def test_threads_wait_observes_background_progress():
    registry = _registry()
    scheduler = ThreadPoolScheduler(registry=registry)
    try:
        done = []
        release = threading.Event()

        def task():
            release.wait(timeout=5.0)
            done.append(1)

        scheduler.submit(task)
        release.set()
        scheduler.wait(lambda: bool(done))
        assert done
    finally:
        scheduler.shutdown()


# ---------------------------------------------------------------- metrics


def test_scheduler_metrics_balance_after_drain():
    for mode in ("virtual", "threads"):
        registry = _registry()
        scheduler = make_scheduler(mode, registry=registry)
        try:
            for _ in range(5):
                scheduler.submit(lambda: None)
            scheduler.drain()
            counters = registry.snapshot()["counters"]
            assert counters["scheduler.tasks.submitted"] == 5
            assert counters["scheduler.tasks.completed"] == 5
            assert counters.get("scheduler.tasks.failed", 0) == 0
            gauges = registry.snapshot()["gauges"]
            assert gauges["scheduler.queue.depth"] == 0
        finally:
            scheduler.shutdown()


def test_default_worker_count_is_sane():
    assert DEFAULT_MAX_WORKERS >= 1
