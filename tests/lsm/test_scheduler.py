"""Unit tests for the maintenance scheduler (all three modes).

Covers the contract the engine's determinism argument rests on: lane
FIFO, ``front=True`` continuations, seeded replayability of the virtual
mode, off-thread failure capture, and the backpressure ``wait`` hook.
"""

import threading

import pytest

from repro.errors import ConfigurationError, SchedulerError
from repro.lsm.scheduler import (
    DEFAULT_MAX_WORKERS,
    MERGE_STARVATION_LIMIT,
    SCHEDULER_MODES,
    SyncScheduler,
    ThreadPoolScheduler,
    VirtualScheduler,
    make_scheduler,
)
from repro.obs.registry import MetricsRegistry


class _Boom(Exception):
    pass


class _FakeCrash(BaseException):
    """Stands in for SimulatedCrash: a non-Exception BaseException."""


def _registry():
    return MetricsRegistry()


# ---------------------------------------------------------------- factory


def test_make_scheduler_dispatches_every_mode():
    for mode in SCHEDULER_MODES:
        scheduler = make_scheduler(mode, registry=_registry())
        assert scheduler.mode == mode
        scheduler.shutdown()


def test_make_scheduler_rejects_unknown_mode():
    with pytest.raises(ConfigurationError, match="unknown scheduler mode"):
        make_scheduler("fibers", registry=_registry())


def test_thread_pool_rejects_zero_workers():
    with pytest.raises(ConfigurationError):
        ThreadPoolScheduler(max_workers=0, registry=_registry())


# ------------------------------------------------------------------- sync


def test_sync_runs_inline_and_raises_at_submit():
    scheduler = SyncScheduler(registry=_registry())
    assert scheduler.inline
    ran = []
    scheduler.submit(lambda: ran.append(1))
    assert ran == [1]
    assert scheduler.pending_count() == 0
    with pytest.raises(_Boom):
        scheduler.submit(lambda: (_ for _ in ()).throw(_Boom()))


# ---------------------------------------------------------------- virtual


def test_virtual_defers_until_stepped():
    scheduler = VirtualScheduler(registry=_registry())
    ran = []
    scheduler.submit(lambda: ran.append("a"))
    scheduler.submit(lambda: ran.append("b"))
    assert ran == []
    assert scheduler.pending_count() == 2
    assert scheduler.step()
    assert len(ran) == 1
    scheduler.drain()
    assert sorted(ran) == ["a", "b"]
    assert not scheduler.step()  # idle


def test_virtual_lane_is_fifo_and_front_jumps_the_queue():
    scheduler = VirtualScheduler(registry=_registry())
    ran = []
    scheduler.submit(lambda: ran.append(1), lane="l")
    scheduler.submit(lambda: ran.append(2), lane="l")
    scheduler.submit(lambda: ran.append(0), lane="l", front=True)
    scheduler.drain()
    assert ran == [0, 1, 2]


def test_virtual_same_seed_replays_same_interleaving():
    def run(seed):
        scheduler = VirtualScheduler(seed=seed, registry=_registry())
        order = []
        for lane in ("a", "b", "c"):
            for index in range(4):
                scheduler.submit(
                    lambda lane=lane, index=index: order.append(
                        (lane, index)
                    ),
                    lane=lane,
                )
        scheduler.drain()
        return order

    assert run(7) == run(7)
    # Lane-internal order is FIFO regardless of the interleaving drawn.
    for order in (run(7), run(8)):
        for lane in ("a", "b", "c"):
            assert [i for ln, i in order if ln == lane] == [0, 1, 2, 3]
    # At least one seed pair interleaves the lanes differently.
    assert any(run(0) != run(seed) for seed in range(1, 20))


def test_virtual_failure_raises_at_the_step_that_ran_it():
    scheduler = VirtualScheduler(registry=_registry())
    scheduler.submit(lambda: (_ for _ in ()).throw(_Boom()))
    with pytest.raises(_Boom):
        scheduler.drain()


def test_virtual_wait_runs_pending_tasks_until_predicate_holds():
    registry = _registry()
    scheduler = VirtualScheduler(registry=registry)
    state = []
    for _ in range(3):
        scheduler.submit(lambda: state.append(1))
    scheduler.wait(lambda: len(state) >= 2)
    assert len(state) == 2
    assert scheduler.pending_count() == 1
    assert registry.snapshot()["counters"]["scheduler.stalls"] == 1


def test_virtual_wait_returns_when_idle_and_predicate_still_false():
    scheduler = VirtualScheduler(registry=_registry())
    scheduler.wait(lambda: False)  # must not hang


# ---------------------------------------------------------------- threads


def test_threads_runs_off_the_calling_thread():
    scheduler = ThreadPoolScheduler(registry=_registry())
    try:
        threads = []
        scheduler.submit(lambda: threads.append(threading.current_thread()))
        scheduler.drain()
        assert threads and threads[0] is not threading.main_thread()
    finally:
        scheduler.shutdown()


def test_threads_lane_never_runs_two_tasks_concurrently():
    scheduler = ThreadPoolScheduler(max_workers=4, registry=_registry())
    try:
        active = 0
        overlap = []
        order = []
        guard = threading.Lock()

        def task(index):
            nonlocal active
            with guard:
                active += 1
                if active > 1:
                    overlap.append(index)
            order.append(index)
            with guard:
                active -= 1

        for index in range(50):
            scheduler.submit(lambda index=index: task(index), lane="only")
        scheduler.drain()
        assert overlap == []
        assert order == list(range(50))  # FIFO survived real threads
    finally:
        scheduler.shutdown()


def test_threads_failure_is_captured_and_reraised_at_drain():
    scheduler = ThreadPoolScheduler(registry=_registry())
    try:
        scheduler.submit(lambda: (_ for _ in ()).throw(_Boom("bg")))
        with pytest.raises(SchedulerError, match="maintenance task"):
            scheduler.drain()
        scheduler.drain()  # failures are consumed: second drain is clean
    finally:
        scheduler.shutdown()


def test_threads_base_exception_is_reraised_raw():
    scheduler = ThreadPoolScheduler(registry=_registry())
    try:
        def die():
            raise _FakeCrash()

        scheduler.submit(die)
        with pytest.raises(_FakeCrash):
            scheduler.drain()
    finally:
        scheduler.shutdown()


def test_threads_submit_after_shutdown_raises():
    scheduler = ThreadPoolScheduler(registry=_registry())
    scheduler.shutdown()
    with pytest.raises(SchedulerError, match="shut-down"):
        scheduler.submit(lambda: None)


def test_threads_wait_observes_background_progress():
    registry = _registry()
    scheduler = ThreadPoolScheduler(registry=registry)
    try:
        done = []
        release = threading.Event()

        def task():
            release.wait(timeout=5.0)
            done.append(1)

        scheduler.submit(task)
        release.set()
        scheduler.wait(lambda: bool(done))
        assert done
    finally:
        scheduler.shutdown()


# ---------------------------------------------------------------- metrics


def test_scheduler_metrics_balance_after_drain():
    for mode in ("virtual", "threads"):
        registry = _registry()
        scheduler = make_scheduler(mode, registry=registry)
        try:
            for _ in range(5):
                scheduler.submit(lambda: None)
            scheduler.drain()
            counters = registry.snapshot()["counters"]
            assert counters["scheduler.tasks.submitted"] == 5
            assert counters["scheduler.tasks.completed"] == 5
            assert counters.get("scheduler.tasks.failed", 0) == 0
            gauges = registry.snapshot()["gauges"]
            assert gauges["scheduler.queue.depth"] == 0
        finally:
            scheduler.shutdown()


def test_default_worker_count_is_sane():
    assert DEFAULT_MAX_WORKERS >= 1


def test_sync_completed_counts_successes_only():
    registry = _registry()
    scheduler = SyncScheduler(registry=registry)
    scheduler.submit(lambda: None)
    with pytest.raises(_Boom):
        scheduler.submit(lambda: (_ for _ in ()).throw(_Boom()))
    counters = registry.snapshot()["counters"]
    assert counters["scheduler.tasks.submitted"] == 2
    assert counters["scheduler.tasks.completed"] == 1
    assert counters["scheduler.tasks.failed"] == 1
    assert registry.snapshot()["gauges"]["scheduler.queue.depth"] == 0


def test_submitted_equals_completed_plus_failed_plus_pending():
    """The accounting invariant across both background modes: a failed
    task lands in exactly one of completed/failed, never both."""
    for mode in ("virtual", "threads"):
        registry = _registry()
        scheduler = make_scheduler(mode, registry=registry)
        try:
            for index in range(6):
                if index % 3 == 0:
                    scheduler.submit(lambda: (_ for _ in ()).throw(_Boom()))
                else:
                    scheduler.submit(lambda: None)
            # Virtual drain raises at each failing step; threads drain
            # runs everything then re-raises the first failure wrapped.
            for _ in range(6):
                try:
                    scheduler.drain()
                    break
                except (_Boom, SchedulerError):
                    continue
            counters = registry.snapshot()["counters"]
            assert counters["scheduler.tasks.submitted"] == 6
            assert counters["scheduler.tasks.failed"] == 2
            assert counters["scheduler.tasks.completed"] == 4
            assert (
                counters["scheduler.tasks.submitted"]
                == counters["scheduler.tasks.completed"]
                + counters["scheduler.tasks.failed"]
                + scheduler.pending_count()
            )
            assert registry.snapshot()["gauges"]["scheduler.queue.depth"] == 0
        finally:
            scheduler.shutdown()


def test_virtual_shutdown_discards_pending_and_zeroes_depth():
    registry = _registry()
    scheduler = VirtualScheduler(registry=registry)
    for _ in range(4):
        scheduler.submit(lambda: None)
    assert scheduler.pending_count() == 4
    scheduler.shutdown()
    assert scheduler.pending_count() == 0
    assert registry.snapshot()["gauges"]["scheduler.queue.depth"] == 0


def test_threads_shutdown_discards_queued_tasks_and_zeroes_depth():
    registry = _registry()
    scheduler = ThreadPoolScheduler(max_workers=2, registry=registry)
    release = threading.Event()
    started = threading.Event()

    def blocker():
        started.set()
        release.wait(timeout=5.0)

    scheduler.submit(blocker, lane="a")
    assert started.wait(timeout=5.0)
    # Queued behind the blocker on the same lane: they cannot start, so
    # shutdown must discard them -- and still zero the accounting.
    for _ in range(5):
        scheduler.submit(lambda: None, lane="a")
    threading.Timer(0.05, release.set).start()
    scheduler.shutdown()
    assert scheduler.pending_count() == 0
    assert registry.snapshot()["gauges"]["scheduler.queue.depth"] == 0
    scheduler.shutdown()  # idempotent: a second call must not go negative
    assert registry.snapshot()["gauges"]["scheduler.queue.depth"] == 0


# ------------------------------------------------------------------ stalls


def test_sync_wait_records_no_stall():
    """Sync mode has no background tasks, so a false predicate can
    never flip -- recording a stall would be phantom backpressure."""
    registry = _registry()
    scheduler = SyncScheduler(registry=registry)
    scheduler.wait(lambda: False)
    scheduler.wait(lambda: True)
    counters = registry.snapshot()["counters"]
    assert counters.get("scheduler.stalls", 0) == 0
    assert registry.snapshot()["histograms"]["scheduler.stall.seconds"][
        "count"
    ] == 0


def test_virtual_idle_wait_records_no_stall():
    registry = _registry()
    scheduler = VirtualScheduler(registry=registry)
    scheduler.wait(lambda: False)  # idle: nothing can change the predicate
    assert registry.snapshot()["counters"].get("scheduler.stalls", 0) == 0


def test_virtual_blocked_wait_stalls_once_with_duration():
    registry = _registry()
    scheduler = VirtualScheduler(registry=registry)
    state = []
    scheduler.submit(lambda: state.append(1))
    scheduler.wait(lambda: bool(state))
    snapshot = registry.snapshot()
    assert snapshot["counters"]["scheduler.stalls"] == 1
    assert snapshot["histograms"]["scheduler.stall.seconds"]["count"] == 1


def test_threads_blocked_wait_stalls_once_and_wakes_on_predicate_flip():
    registry = _registry()
    scheduler = ThreadPoolScheduler(registry=registry)
    try:
        done = []
        release = threading.Event()

        def task():
            release.wait(timeout=5.0)
            done.append(1)

        scheduler.submit(task)
        threading.Timer(0.1, release.set).start()
        scheduler.wait(lambda: bool(done))  # flips while wait is blocked
        assert done
        snapshot = registry.snapshot()
        assert snapshot["counters"]["scheduler.stalls"] == 1
        assert snapshot["histograms"]["scheduler.stall.seconds"]["count"] == 1
    finally:
        scheduler.shutdown()


# ----------------------------------------------------------- fair dispatch


def _block_the_only_worker(scheduler):
    started = threading.Event()
    gate = threading.Event()

    def blocker():
        started.set()
        gate.wait(timeout=5.0)

    scheduler.submit(blocker, lane="gate")
    assert started.wait(timeout=5.0)
    return gate


def test_threads_flush_lane_jumps_merge_lanes_under_pressure():
    registry = _registry()
    scheduler = ThreadPoolScheduler(max_workers=1, registry=registry)
    try:
        scheduler.add_pressure_probe(lambda: True)
        order = []
        gate = _block_the_only_worker(scheduler)
        # FIFO would run the merge lanes first; under backpressure the
        # flush lane must be dispatched ahead of both.
        scheduler.submit(lambda: order.append("merge-a"), lane="a", kind="merge")
        scheduler.submit(lambda: order.append("merge-b"), lane="b", kind="merge")
        scheduler.submit(lambda: order.append("flush"), lane="f", kind="flush")
        gate.set()
        scheduler.drain()
        assert order[0] == "flush"
        counters = registry.snapshot()["counters"]
        assert counters["scheduler.dispatch.flush_first"] >= 1
    finally:
        scheduler.shutdown()


def test_threads_fair_dispatch_respects_starvation_limit():
    registry = _registry()
    scheduler = ThreadPoolScheduler(max_workers=1, registry=registry)
    try:
        scheduler.add_pressure_probe(lambda: True)
        order = []
        gate = _block_the_only_worker(scheduler)
        scheduler.submit(lambda: order.append("merge"), lane="m", kind="merge")
        for index in range(MERGE_STARVATION_LIMIT + 2):
            scheduler.submit(
                lambda index=index: order.append(f"flush-{index}"),
                lane=f"f{index}",
                kind="flush",
            )
        gate.set()
        scheduler.drain()
        # Exactly MERGE_STARVATION_LIMIT flushes jump ahead, then the
        # waiting merge lane is served regardless of pressure.
        assert order.index("merge") == MERGE_STARVATION_LIMIT
    finally:
        scheduler.shutdown()


def test_threads_without_pressure_keeps_fifo_across_lanes():
    registry = _registry()
    scheduler = ThreadPoolScheduler(max_workers=1, registry=registry)
    try:
        order = []
        gate = _block_the_only_worker(scheduler)
        scheduler.submit(lambda: order.append("merge"), lane="m", kind="merge")
        scheduler.submit(lambda: order.append("flush"), lane="f", kind="flush")
        gate.set()
        scheduler.drain()
        assert order == ["merge", "flush"]
        counters = registry.snapshot()["counters"]
        assert counters.get("scheduler.dispatch.flush_first", 0) == 0
    finally:
        scheduler.shutdown()


def test_broken_pressure_probe_never_wedges_dispatch():
    registry = _registry()
    scheduler = ThreadPoolScheduler(max_workers=1, registry=registry)
    try:
        scheduler.add_pressure_probe(
            lambda: (_ for _ in ()).throw(_Boom())
        )
        ran = []
        scheduler.submit(lambda: ran.append(1), kind="merge")
        scheduler.submit(lambda: ran.append(2), kind="flush")
        scheduler.drain()
        assert sorted(ran) == [1, 2]
    finally:
        scheduler.shutdown()
