"""Shared fixtures for the LSM suite: deterministic interleavings.

The scheduler work is only testable if a test can *choose* the
interleaving it exercises, so the central fixture builds datasets whose
maintenance runs on a seeded :class:`VirtualScheduler`.  Nothing flushes
or merges until the test advances the scheduler (``step``/``drain``),
and the same seed replays the same interleaving -- a failing example
prints its seed and is reproducible from it.
"""

import pytest

from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.scheduler import VirtualScheduler
from repro.lsm.storage import SimulatedDisk
from repro.obs.registry import MetricsRegistry, use_registry
from repro.types import Domain


@pytest.fixture
def fresh_registry():
    """Install a private metrics registry for the test, so scheduler
    counters can be asserted without process-global bleed-through."""
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry


@pytest.fixture
def interleaved_dataset(fresh_registry):
    """Factory for (dataset, scheduler) pairs on a seeded virtual
    scheduler.

    ``interleaved_dataset(seed=N, **dataset_kwargs)`` returns a small
    indexed dataset whose flushes/merges queue on a
    :class:`VirtualScheduler` seeded with ``N``.  Defaults are sized so
    a handful of inserts produces real maintenance traffic.
    """
    built = []

    def build(seed=0, **kwargs):
        scheduler = VirtualScheduler(seed=seed, registry=fresh_registry)
        kwargs.setdefault("memtable_capacity", 8)
        kwargs.setdefault(
            "merge_policy", ConstantMergePolicy(max_components=3)
        )
        kwargs.setdefault(
            "indexes", [IndexSpec("value_idx", "value", Domain(0, 99))]
        )
        dataset = Dataset(
            "interleaved",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 1023),
            scheduler=scheduler,
            **kwargs,
        )
        built.append((dataset, scheduler))
        return dataset, scheduler

    yield build
    for _dataset, scheduler in built:
        scheduler.shutdown()
