"""Crash-recovery tests: WAL + manifest + seeded injection.

The central invariant: for any operation sequence and any registered
crash point, killing the process at that point, recovering from disk
and retrying only the interrupted operation (if its effect is absent)
yields a dataset whose reconciled scans are identical to a crash-free
run of the same sequence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecoveryError
from repro.lsm.crashpoints import CRASH_POINTS, CrashInjector, CrashPlan, SimulatedCrash
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.types import Domain


def _make_dataset(
    disk,
    durable=True,
    wal_enabled=True,
    recover=False,
    injector=None,
    capacity=32,
):
    return Dataset(
        "ds",
        disk,
        primary_key="id",
        primary_domain=Domain(0, 2**20 - 1),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 1023))],
        memtable_capacity=capacity,
        merge_policy=ConstantMergePolicy(max_components=3),
        durable=durable,
        wal_enabled=wal_enabled,
        crash_injector=injector,
        recover=recover,
    )


def _doc(pk, value=None):
    return {"id": pk, "value": (pk * 13) % 1024 if value is None else value}


def _scans(dataset):
    primary = tuple(
        (record.key, record.value["value"])
        for record in dataset.primary.scan()
    )
    secondary = tuple(record.key for record in dataset.scan_secondary("value_idx"))
    return primary, secondary


def _components(dataset):
    return {
        tree.name: [
            (component.matter_count, component.antimatter_count)
            for component in tree.components
        ]
        for tree in (dataset.primary, dataset.secondary_tree("value_idx"))
    }


def _apply(dataset, op):
    kind = op[0]
    if kind == "bulkload":
        dataset.bulkload([_doc(pk) for pk in op[1]])
    elif kind == "insert":
        dataset.insert(_doc(op[1], op[2]))
    elif kind == "update":
        dataset.update(_doc(op[1], op[2]))
    elif kind == "delete":
        dataset.delete(op[1])
    else:
        dataset.flush()


def _retry(dataset, op):
    """Retry the interrupted op only where its effect is absent."""
    kind = op[0]
    if kind == "bulkload":
        if not (dataset.primary.components or dataset.primary.memtable):
            _apply(dataset, op)
    elif kind == "insert":
        if dataset.get(op[1]) is None:
            _apply(dataset, op)
    elif kind == "update":
        current = dataset.get(op[1])
        if current is not None and current["value"] != op[2]:
            _apply(dataset, op)
    elif kind == "delete":
        if dataset.get(op[1]) is not None:
            _apply(dataset, op)
    else:
        dataset.flush()


def _run_with_crashes(disk, ops, injector):
    """Run ops; on each crash, recover from disk and resume."""
    dataset = _make_dataset(disk, injector=injector)
    position = 0
    while position < len(ops):
        try:
            _apply(dataset, ops[position])
        except SimulatedCrash:
            dataset = _make_dataset(disk, recover=True, injector=injector)
            dataset.complete_recovery()
            disk.delete_files_except(dataset.live_file_ids())
            _retry(dataset, ops[position])
        position += 1
    return dataset


# -- deterministic coverage of every crash point -------------------------


def _workload():
    ops = [("bulkload", tuple(range(40)))]
    for pk in range(40, 150):
        ops.append(("insert", pk, (pk * 13) % 1024))
    for pk in range(0, 150, 7):
        ops.append(("delete", pk))
    ops.append(("flush",))
    return ops


@pytest.fixture(scope="module")
def crash_free_images():
    dataset = _run_with_crashes(SimulatedDisk(), _workload(), injector=None)
    return _scans(dataset), _components(dataset)


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_recovery_is_bit_identical_at_every_crash_point(
    point, crash_free_images
):
    # max_hit=2: the single bulkload passes bulkload.build exactly
    # twice (primary + secondary component).
    injector = CrashInjector.seeded(seed=0, point=point, max_hit=2)
    disk = SimulatedDisk()
    dataset = _run_with_crashes(disk, _workload(), injector)
    assert injector.fired is not None, (
        f"crash point {point} never reached "
        f"(passages {injector.hits.get(point, 0)})"
    )
    baseline_scans, baseline_components = crash_free_images
    assert _scans(dataset) == baseline_scans
    assert _components(dataset) == baseline_components


# -- targeted recovery semantics -----------------------------------------


def test_unflushed_acked_writes_survive_restart():
    disk = SimulatedDisk()
    dataset = _make_dataset(disk)
    for pk in range(10):
        dataset.insert(_doc(pk))
    # No flush ever ran: the records live only in WAL + memtable.
    recovered = _make_dataset(disk, recover=True)
    recovered.complete_recovery()
    assert [record.key for record in recovered.primary.scan()] == list(range(10))


def test_recovered_dataset_accepts_new_writes():
    disk = SimulatedDisk()
    dataset = _make_dataset(disk)
    for pk in range(40):
        dataset.insert(_doc(pk))
    recovered = _make_dataset(disk, recover=True)
    recovered.complete_recovery()
    recovered.insert(_doc(1000))
    recovered.delete(0)
    assert recovered.get(1000) is not None
    assert recovered.get(0) is None


def test_without_wal_memtable_records_are_lost():
    # The negative control: manifest-only durability recovers flushed
    # components but acknowledged memtable records die with the crash.
    disk = SimulatedDisk()
    dataset = _make_dataset(disk, wal_enabled=False)
    for pk in range(40):  # capacity 32: one flush + 8 memtable records
        dataset.insert(_doc(pk))
    flushed = dataset.primary.components[0].matter_count
    recovered = _make_dataset(disk, wal_enabled=False, recover=True)
    recovered.complete_recovery()
    assert recovered.count_records() == flushed < 40


def test_recover_requires_durable():
    disk = SimulatedDisk()
    with pytest.raises(RecoveryError):
        Dataset(
            "ds",
            disk,
            primary_key="id",
            primary_domain=Domain(0, 100),
            recover=True,
        )


def test_complete_recovery_requires_durable():
    dataset = Dataset(
        "ds", SimulatedDisk(), primary_key="id", primary_domain=Domain(0, 100)
    )
    with pytest.raises(RecoveryError):
        dataset.complete_recovery()


def test_interrupted_merge_leaves_orphan_that_gc_reclaims():
    disk = SimulatedDisk()
    injector = CrashInjector(CrashPlan("merge.build", 1))
    ops = [("insert", pk, pk % 1024) for pk in range(150)]
    dataset = _run_with_crashes(disk, ops, injector)
    assert injector.fired is not None
    # The half-built merged component was GC'd during recovery and the
    # inputs are still live; every record remains reachable.
    assert disk.stats.files_deleted > 0
    assert dataset.count_records() == 150
    assert disk.live_file_ids() >= dataset.live_file_ids()


# -- the property: random interleavings, random crash --------------------


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_random_interleaving_recovers_bit_identically(data):
    ops = data.draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.integers(0, 19),
                    st.integers(0, 1023),
                ),
                st.tuples(st.just("update"), st.integers(0, 19), st.integers(0, 1023)),
                st.tuples(st.just("delete"), st.integers(0, 19)),
                st.tuples(st.just("flush")),
            ),
            min_size=5,
            max_size=60,
        )
    )
    # Inserting an existing pk violates the dataset contract; rewrite
    # to updates against a running model of live keys.
    live: set[int] = set()
    script = []
    for op in ops:
        if op[0] == "insert":
            if op[1] in live:
                op = ("update", op[1], op[2])
            else:
                live.add(op[1])
        elif op[0] == "update" and op[1] not in live:
            op = ("insert", op[1], op[2])
            live.add(op[1])
        elif op[0] == "delete":
            live.discard(op[1])
        script.append(op)

    point = data.draw(st.sampled_from(CRASH_POINTS))
    hit = data.draw(st.integers(1, 2))

    baseline = _run_with_crashes(SimulatedDisk(), script, injector=None)
    injector = CrashInjector(CrashPlan(point, hit))
    recovered = _run_with_crashes(SimulatedDisk(), script, injector=injector)
    # The crash may not fire (short scripts); equality must hold either way.
    assert _scans(recovered) == _scans(baseline)
