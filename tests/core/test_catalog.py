"""Tests for the statistics catalog."""

import pytest

from repro.core.catalog import StatisticsCatalog
from repro.errors import CatalogError
from repro.synopses import SynopsisType, create_builder
from repro.types import Domain

DOMAIN = Domain(0, 99)


def _synopsis(values=()):
    builder = create_builder(SynopsisType.EQUI_WIDTH, DOMAIN, 8, len(values))
    for value in sorted(values):
        builder.add(value)
    return builder.build()


def _put(
    catalog, index="idx", node="n1", partition=0, uid=1, values=(1, 2), epoch=0
):
    return catalog.put(
        index, node, partition, uid, _synopsis(values), _synopsis(), epoch=epoch
    )


def test_put_and_retrieve():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1)
    _put(catalog, uid=2)
    entries = catalog.entries_for("idx")
    assert len(entries) == 2
    assert [e.component_uid for e in entries] == [1, 2]


def test_entries_for_unknown_index_is_empty():
    assert StatisticsCatalog().entries_for("nope") == []


def test_put_replaces_same_component():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1, values=(1,))
    _put(catalog, uid=1, values=(1, 2, 3))
    entries = catalog.entries_for("idx")
    assert len(entries) == 1
    assert entries[0].synopsis.total_count == 3


def test_versions_bump_on_put_and_retract():
    catalog = StatisticsCatalog()
    assert catalog.version_for("idx") == 0
    _put(catalog, uid=1)
    assert catalog.version_for("idx") == 1
    _put(catalog, uid=2)
    assert catalog.version_for("idx") == 2
    catalog.retract("idx", "n1", 0, [1])
    assert catalog.version_for("idx") == 3


def test_retract_missing_does_not_bump():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1)
    version = catalog.version_for("idx")
    assert catalog.retract("idx", "n1", 0, [99]) == 0
    assert catalog.version_for("idx") == version


def test_entries_isolated_per_node_partition():
    catalog = StatisticsCatalog()
    _put(catalog, node="n1", partition=0, uid=1)
    _put(catalog, node="n2", partition=1, uid=1)
    assert catalog.entry_count("idx") == 2
    catalog.retract("idx", "n1", 0, [1])
    remaining = catalog.entries_for("idx")
    assert len(remaining) == 1
    assert remaining[0].node_id == "n2"


def test_index_names_and_counts():
    catalog = StatisticsCatalog()
    _put(catalog, index="b")
    _put(catalog, index="a")
    assert catalog.index_names() == ["a", "b"]
    assert catalog.entry_count() == 2


def test_total_bytes():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1)
    assert catalog.total_bytes() > 0
    assert catalog.total_bytes("idx") == catalog.total_bytes()
    with pytest.raises(CatalogError):
        catalog.total_bytes("missing")


def test_put_identical_payload_is_noop():
    catalog = StatisticsCatalog()
    first = _put(catalog, uid=1, values=(1, 2))
    version = catalog.version_for("idx")
    second = _put(catalog, uid=1, values=(1, 2))  # redelivered publish
    assert second is first
    assert catalog.version_for("idx") == version
    assert catalog.entry_count("idx") == 1


def test_tombstone_blocks_late_publish():
    catalog = StatisticsCatalog()
    catalog.retract("idx", "n1", 0, [7])  # retract arrives before the publish
    assert _put(catalog, uid=7) is None
    assert catalog.entry_count("idx") == 0


def test_tombstone_is_scoped_to_one_component():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1)
    catalog.retract("idx", "n1", 0, [1])
    assert _put(catalog, uid=2) is not None  # other uids unaffected
    assert _put(catalog, node="n2", uid=1) is not None  # other nodes too
    assert catalog.entry_count("idx") == 2


def test_duplicate_retract_is_noop():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1)
    assert catalog.retract("idx", "n1", 0, [1]) == 1
    version = catalog.version_for("idx")
    assert catalog.retract("idx", "n1", 0, [1]) == 0
    assert catalog.version_for("idx") == version


def test_put_same_payload_new_epoch_replaces():
    # After a node restart the same component payload is republished
    # under a higher epoch; the entry must be replaced, not deduped,
    # so reset_partition cannot sweep it away later.
    catalog = StatisticsCatalog()
    _put(catalog, uid=1, values=(1, 2))
    version = catalog.version_for("idx")
    entry = _put(catalog, uid=1, values=(1, 2), epoch=1)
    assert entry is not None and entry.epoch == 1
    assert catalog.version_for("idx") > version
    assert catalog.entry_count("idx") == 1


def test_reset_partition_sweeps_only_stale_entries():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1)                      # stale (epoch 0)
    _put(catalog, uid=2, epoch=1)             # already current
    _put(catalog, partition=1, uid=3)         # other partition
    _put(catalog, node="n2", uid=4)           # other node
    version = catalog.version_for("idx")
    removed = catalog.reset_partition("idx", "n1", 0, below_epoch=1)
    assert removed == 1
    assert catalog.entry_count("idx") == 3
    assert catalog.version_for("idx") == version + 1
    remaining = {entry.component_uid for entry in catalog.entries_for("idx")}
    assert remaining == {2, 3, 4}


def test_reset_partition_without_matches_is_noop():
    catalog = StatisticsCatalog()
    _put(catalog, uid=1, epoch=5)
    version = catalog.version_for("idx")
    assert catalog.reset_partition("idx", "n1", 0, below_epoch=3) == 0
    assert catalog.version_for("idx") == version


def test_reset_partition_leaves_tombstones_intact():
    catalog = StatisticsCatalog()
    catalog.retract("idx", "n1", 0, [7])
    catalog.reset_partition("idx", "n1", 0, below_epoch=10)
    # The retract-before-publish fence still holds post-reset.
    assert _put(catalog, uid=7) is None
