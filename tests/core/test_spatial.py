"""End-to-end tests for composite-key (2-D) statistics."""

import pytest

from repro.core.spatial import (
    SpatialStatisticsConfig,
    SpatialStatisticsManager,
)
from repro.errors import ConfigurationError, QueryError
from repro.lsm.dataset import CompositeIndexSpec, Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.synopses.multidim import Synopsis2DType
from repro.types import Domain

X_DOMAIN = Domain(0, 999)
Y_DOMAIN = Domain(0, 499)


def _setup(synopsis_type=Synopsis2DType.GROUND_TRUTH, budget=1024, **kwargs):
    dataset = Dataset(
        "events",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[
            IndexSpec("x_idx", "x", X_DOMAIN),
            CompositeIndexSpec("xy_idx", ("x", "y"), (X_DOMAIN, Y_DOMAIN)),
        ],
        **kwargs,
    )
    manager = SpatialStatisticsManager(
        SpatialStatisticsConfig(synopsis_type, budget)
    )
    manager.attach(dataset)
    return dataset, manager


def _doc(pk):
    return {"id": pk, "x": (pk * 7) % 1000, "y": (pk * 13) % 500}


class TestCompositeIndexMaintenance:
    def test_entries_sorted_lexicographically(self):
        dataset, _manager = _setup()
        for pk in range(100):
            dataset.insert(_doc(pk))
        dataset.flush()
        keys = [r.key for r in dataset.scan_composite("xy_idx", None, None)]
        assert keys == sorted(keys)
        assert len(keys) == 100

    def test_rectangle_scan(self):
        dataset, _manager = _setup()
        for pk in range(200):
            dataset.insert(_doc(pk))
        expected = sum(
            1
            for pk in range(200)
            if 100 <= (pk * 7) % 1000 <= 400 and 50 <= (pk * 13) % 500 <= 250
        )
        assert dataset.count_composite_range("xy_idx", 100, 400, 50, 250) == expected

    def test_update_and_delete_maintain_composite(self):
        dataset, _manager = _setup(memtable_capacity=32)
        for pk in range(100):
            dataset.insert(_doc(pk))
        dataset.flush()
        assert dataset.update({"id": 5, "x": 999, "y": 499})
        assert dataset.delete(6)
        dataset.flush()
        assert dataset.count_composite_range("xy_idx", 999, 999, 499, 499) == 1
        assert dataset.count_composite_range("xy_idx", 0, 999, 0, 499) == 99

    def test_scan_kind_mismatch_rejected(self):
        dataset, _manager = _setup()
        with pytest.raises(QueryError):
            list(dataset.scan_secondary("xy_idx", 0, 10))
        with pytest.raises(QueryError):
            list(dataset.scan_composite("x_idx", 0, 10, 0, 10))

    def test_composite_spec_validation(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            CompositeIndexSpec("bad", ("a",), (X_DOMAIN,))


class TestSpatialStatistics:
    def test_ground_truth_pipeline_exact(self):
        dataset, manager = _setup(memtable_capacity=32)
        for pk in range(300):
            dataset.insert(_doc(pk))
        for pk in range(0, 300, 4):
            dataset.delete(pk)
        dataset.flush()
        for rect in [(0, 999, 0, 499), (100, 600, 100, 400), (7, 7, 91, 91)]:
            true = dataset.count_composite_range("xy_idx", *rect)
            assert manager.estimate(dataset, "xy_idx", *rect) == pytest.approx(true)

    @pytest.mark.parametrize(
        "synopsis_type", [Synopsis2DType.GRID, Synopsis2DType.WAVELET]
    )
    def test_approximate_synopses_track_truth(self, synopsis_type):
        dataset, manager = _setup(synopsis_type, budget=4096, memtable_capacity=256)
        for pk in range(2000):
            dataset.insert(_doc(pk))
        dataset.flush()
        rect = (0, 499, 0, 249)
        true = dataset.count_composite_range("xy_idx", *rect)
        estimate = manager.estimate(dataset, "xy_idx", *rect)
        assert estimate == pytest.approx(true, rel=0.25)

    def test_merge_retracts_entries(self):
        dataset, manager = _setup(memtable_capacity=50)
        for pk in range(200):
            dataset.insert(_doc(pk))
        dataset.flush()
        tree = dataset.secondary_tree("xy_idx")
        assert manager.catalog.entry_count(tree.name) > 1
        tree.merge(tree.components)
        assert manager.catalog.entry_count(tree.name) == 1
        true = dataset.count_composite_range("xy_idx", 0, 999, 0, 499)
        assert manager.estimate(dataset, "xy_idx", 0, 999, 0, 499) == pytest.approx(
            true
        )

    def test_beats_independence_assumption_on_correlated_data(self):
        """The reason for 2-D synopses: rectangle estimates from 1-D
        marginals under the independence assumption collapse on
        correlated attributes; the 2-D synopsis does not."""
        dataset, manager = _setup(Synopsis2DType.GRID, budget=4096)
        # y perfectly correlated with x (y = x // 2).
        documents = [
            {"id": pk, "x": pk % 1000, "y": (pk % 1000) // 2} for pk in range(4000)
        ]
        for document in documents:
            dataset.insert(document)
        dataset.flush()
        # Anti-correlated rectangle: x small, y large -> truly empty.
        rect = (0, 99, 400, 499)
        true = dataset.count_composite_range("xy_idx", *rect)
        assert true == 0
        spatial = manager.estimate(dataset, "xy_idx", *rect)
        # Independence assumption: sel(x) * sel(y) * N.
        n = len(documents)
        sel_x = sum(1 for d in documents if 0 <= d["x"] <= 99) / n
        sel_y = sum(1 for d in documents if 400 <= d["y"] <= 499) / n
        independence = sel_x * sel_y * n
        assert independence > 50  # the classic estimator is badly wrong
        assert spatial < independence / 5  # the 2-D synopsis is not

    def test_constant_policy_with_spatial_stats(self):
        dataset, manager = _setup(
            Synopsis2DType.GROUND_TRUTH,
            memtable_capacity=32,
            merge_policy=ConstantMergePolicy(3),
        )
        for pk in range(400):
            dataset.insert(_doc(pk))
        dataset.flush()
        true = dataset.count_composite_range("xy_idx", 0, 999, 0, 499)
        assert manager.estimate(dataset, "xy_idx", 0, 999, 0, 499) == pytest.approx(
            true
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SpatialStatisticsConfig(budget=0)
