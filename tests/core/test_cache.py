"""Tests for the merged-synopsis cache."""

from repro.core.cache import MergedSynopsisCache
from repro.obs.registry import MetricsRegistry
from repro.synopses import SynopsisType, create_builder
from repro.types import Domain


def _synopsis():
    return create_builder(SynopsisType.EQUI_WIDTH, Domain(0, 9), 4, 0).build()


def _entry_bytes():
    """Accounted bytes of one cached pair built by :func:`_synopsis`."""
    cache = MergedSynopsisCache()
    cache.put("probe", _synopsis(), _synopsis(), version=1)
    return cache.memory_bytes()


def test_miss_on_empty():
    cache = MergedSynopsisCache()
    assert cache.get("idx", 1) is None
    assert cache.misses == 1
    assert cache.hits == 0


def test_hit_on_matching_version():
    cache = MergedSynopsisCache()
    cache.put("idx", _synopsis(), _synopsis(), version=3)
    cached = cache.get("idx", 3)
    assert cached is not None
    assert cached.version == 3
    assert cache.hits == 1


def test_stale_version_invalidates():
    cache = MergedSynopsisCache()
    cache.put("idx", _synopsis(), _synopsis(), version=3)
    assert cache.get("idx", 4) is None
    assert cache.invalidations == 1
    assert len(cache) == 0
    # The stale entry is gone for good.
    assert cache.get("idx", 3) is None


def test_explicit_invalidate():
    cache = MergedSynopsisCache()
    cache.put("idx", _synopsis(), _synopsis(), version=1)
    cache.invalidate("idx")
    assert cache.invalidations == 1
    cache.invalidate("idx")  # idempotent, no double count
    assert cache.invalidations == 1


def test_clear_keeps_counters():
    cache = MergedSynopsisCache()
    cache.put("a", _synopsis(), _synopsis(), version=1)
    cache.get("a", 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1
    assert cache.memory_bytes() == 0


# -- capacity-bounded LRU behaviour ------------------------------------------


def test_unbounded_by_default():
    cache = MergedSynopsisCache()
    assert cache.capacity_bytes is None
    for i in range(64):
        cache.put(f"idx{i}", _synopsis(), _synopsis(), version=1)
    assert len(cache) == 64
    assert cache.evictions == 0


def test_capacity_evicts_least_recently_used_first():
    entry = _entry_bytes()
    cache = MergedSynopsisCache(capacity_bytes=3 * entry)
    for name in ("a", "b", "c"):
        cache.put(name, _synopsis(), _synopsis(), version=1)
    # Touch "a": it becomes the hottest entry, "b" the coldest.
    assert cache.get("a", 1) is not None
    cache.put("d", _synopsis(), _synopsis(), version=1)
    assert cache.evictions == 1
    assert cache.get("b", 1) is None  # the LRU victim
    assert cache.get("a", 1) is not None
    assert cache.get("c", 1) is not None
    assert cache.get("d", 1) is not None
    assert cache.memory_bytes() == 3 * entry


def test_newest_entry_always_admitted():
    entry = _entry_bytes()
    cache = MergedSynopsisCache(capacity_bytes=entry // 2)
    cache.put("big", _synopsis(), _synopsis(), version=1)
    # Over budget, but a lone oversized merge must not wedge the fast
    # path off entirely.
    assert cache.get("big", 1) is not None
    cache.put("next", _synopsis(), _synopsis(), version=1)
    assert cache.get("big", 1) is None  # evicted by the newer entry
    assert cache.get("next", 1) is not None


def test_set_capacity_shrink_evicts_immediately():
    entry = _entry_bytes()
    cache = MergedSynopsisCache(capacity_bytes=4 * entry)
    for name in ("a", "b", "c", "d"):
        cache.put(name, _synopsis(), _synopsis(), version=1)
    cache.set_capacity(2 * entry)
    assert len(cache) == 2
    assert cache.evictions == 2
    assert cache.memory_bytes() == 2 * entry
    assert {n for n in ("c", "d") if cache.get(n, 1) is not None} == {"c", "d"}


def test_put_replacement_does_not_double_count_bytes():
    entry = _entry_bytes()
    cache = MergedSynopsisCache(capacity_bytes=8 * entry)
    cache.put("a", _synopsis(), _synopsis(), version=1)
    cache.put("a", _synopsis(), _synopsis(), version=2)
    assert cache.memory_bytes() == entry
    assert cache.evictions == 0


def test_readmission_after_invalidation():
    entry = _entry_bytes()
    cache = MergedSynopsisCache(capacity_bytes=2 * entry)
    cache.put("a", _synopsis(), _synopsis(), version=1)
    cache.invalidate("a")
    assert cache.memory_bytes() == 0
    # Re-admission: the slot is genuinely free again.
    cache.put("a", _synopsis(), _synopsis(), version=2)
    assert cache.get("a", 2) is not None
    assert cache.memory_bytes() == entry


def test_readmission_after_stale_drop():
    entry = _entry_bytes()
    cache = MergedSynopsisCache(capacity_bytes=2 * entry)
    cache.put("a", _synopsis(), _synopsis(), version=1)
    assert cache.get("a", 5) is None  # stale-on-sight drop
    assert cache.memory_bytes() == 0
    cache.put("a", _synopsis(), _synopsis(), version=5)
    assert cache.get("a", 5) is not None


def test_eviction_and_bytes_metrics():
    entry = _entry_bytes()
    registry = MetricsRegistry()
    cache = MergedSynopsisCache(registry=registry, capacity_bytes=2 * entry)
    for name in ("a", "b", "c"):
        cache.put(name, _synopsis(), _synopsis(), version=1)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["cache.evictions"] == cache.evictions == 1
    assert snapshot["gauges"]["cache.bytes"] == cache.memory_bytes() == 2 * entry


def test_bytes_listener_fires_on_every_change():
    observed: list[int] = []
    cache = MergedSynopsisCache(capacity_bytes=_entry_bytes())
    cache.add_bytes_listener(observed.append)
    cache.put("a", _synopsis(), _synopsis(), version=1)
    cache.put("b", _synopsis(), _synopsis(), version=1)  # evicts "a"
    cache.invalidate("b")
    assert observed[-1] == 0
    assert max(observed) == _entry_bytes()
