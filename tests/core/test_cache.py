"""Tests for the merged-synopsis cache."""

from repro.core.cache import MergedSynopsisCache
from repro.synopses import SynopsisType, create_builder
from repro.types import Domain


def _synopsis():
    return create_builder(SynopsisType.EQUI_WIDTH, Domain(0, 9), 4, 0).build()


def test_miss_on_empty():
    cache = MergedSynopsisCache()
    assert cache.get("idx", 1) is None
    assert cache.misses == 1
    assert cache.hits == 0


def test_hit_on_matching_version():
    cache = MergedSynopsisCache()
    cache.put("idx", _synopsis(), _synopsis(), version=3)
    cached = cache.get("idx", 3)
    assert cached is not None
    assert cached.version == 3
    assert cache.hits == 1


def test_stale_version_invalidates():
    cache = MergedSynopsisCache()
    cache.put("idx", _synopsis(), _synopsis(), version=3)
    assert cache.get("idx", 4) is None
    assert cache.invalidations == 1
    assert len(cache) == 0
    # The stale entry is gone for good.
    assert cache.get("idx", 3) is None


def test_explicit_invalidate():
    cache = MergedSynopsisCache()
    cache.put("idx", _synopsis(), _synopsis(), version=1)
    cache.invalidate("idx")
    assert cache.invalidations == 1
    cache.invalidate("idx")  # idempotent, no double count
    assert cache.invalidations == 1


def test_clear_keeps_counters():
    cache = MergedSynopsisCache()
    cache.put("a", _synopsis(), _synopsis(), version=1)
    cache.get("a", 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1
