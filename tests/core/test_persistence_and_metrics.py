"""Tests for catalog persistence and collector metrics."""

import pytest

from repro.core import StatisticsConfig, StatisticsManager
from repro.core.estimator import CardinalityEstimator
from repro.core.persistence import load_catalog, save_catalog
from repro.errors import CatalogError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.types import Domain

VALUE_DOMAIN = Domain(0, 999)


def _populated_manager(synopsis_type=SynopsisType.WAVELET, **kwargs):
    dataset = Dataset(
        "ds",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        memtable_capacity=64,
        **kwargs,
    )
    manager = StatisticsManager(StatisticsConfig(synopsis_type, 128))
    manager.attach(dataset)
    for pk in range(500):
        dataset.insert({"id": pk, "value": (pk * 3) % 1000})
    for pk in range(0, 500, 9):
        dataset.delete(pk)
    dataset.flush()
    return dataset, manager


class TestPersistence:
    def test_roundtrip_preserves_estimates(self, tmp_path):
        dataset, manager = _populated_manager()
        path = tmp_path / "catalog.json"
        written = save_catalog(manager.catalog, path)
        assert written == manager.catalog.entry_count()

        restored = load_catalog(path)
        # Compare cache-free estimators on both catalogs: the cached
        # merged-synopsis path intentionally differs slightly for
        # wavelets (re-thresholding loss, Section 3.5).
        estimator = CardinalityEstimator(restored)
        baseline = CardinalityEstimator(manager.catalog)
        index_name = dataset.secondary_tree("value_idx").name
        for lo, hi in [(0, 999), (100, 400), (42, 42)]:
            assert estimator.estimate(index_name, lo, hi) == pytest.approx(
                baseline.estimate(index_name, lo, hi)
            )

    @pytest.mark.parametrize(
        "synopsis_type",
        [
            SynopsisType.EQUI_WIDTH,
            SynopsisType.EQUI_HEIGHT,
            SynopsisType.GK_SKETCH,
            SynopsisType.RESERVOIR_SAMPLE,
        ],
    )
    def test_roundtrip_all_types(self, tmp_path, synopsis_type):
        dataset, manager = _populated_manager(synopsis_type)
        path = tmp_path / "catalog.json"
        save_catalog(manager.catalog, path)
        restored = load_catalog(path)
        assert restored.entry_count() == manager.catalog.entry_count()
        assert restored.index_names() == manager.catalog.index_names()

    def test_missing_file(self, tmp_path):
        with pytest.raises(CatalogError):
            load_catalog(tmp_path / "ghost.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format": 99, "entries": []}')
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_empty_catalog(self, tmp_path):
        from repro.core.catalog import StatisticsCatalog

        path = tmp_path / "empty.json"
        assert save_catalog(StatisticsCatalog(), path) == 0
        assert load_catalog(path).entry_count() == 0

    def test_checksum_rejects_payload_tampering(self, tmp_path):
        import json

        _dataset, manager = _populated_manager()
        path = tmp_path / "catalog.json"
        save_catalog(manager.catalog, path)
        document = json.loads(path.read_text())
        document["entries"][0]["partition"] += 1  # single flipped field
        path.write_text(json.dumps(document))
        with pytest.raises(CatalogError, match="checksum"):
            load_catalog(path)

    def test_checksum_rejects_truncated_entry_list(self, tmp_path):
        import json

        _dataset, manager = _populated_manager()
        path = tmp_path / "catalog.json"
        save_catalog(manager.catalog, path)
        document = json.loads(path.read_text())
        document["entries"] = document["entries"][:-1]
        path.write_text(json.dumps(document))
        with pytest.raises(CatalogError, match="checksum"):
            load_catalog(path)

    def test_malformed_entry_named_in_error(self, tmp_path):
        import json

        from repro.core.persistence import _entries_checksum

        entries = [{"index": "idx"}]  # missing every other field
        document = {
            "format": 2,
            "checksum": _entries_checksum(entries),
            "entries": entries,
        }
        path = tmp_path / "partial.json"
        path.write_text(json.dumps(document))
        with pytest.raises(CatalogError, match="entry 0"):
            load_catalog(path)

    def test_epoch_survives_roundtrip(self, tmp_path):
        from repro.core.catalog import StatisticsCatalog
        from repro.synopses import create_builder

        builder = create_builder(SynopsisType.EQUI_WIDTH, VALUE_DOMAIN, 8, 1)
        builder.add(1)
        synopsis = builder.build()
        catalog = StatisticsCatalog()
        catalog.put("idx", "n1", 0, 1, synopsis, synopsis, epoch=3)
        path = tmp_path / "epoch.json"
        save_catalog(catalog, path)
        restored = load_catalog(path)
        assert restored.entries_for("idx")[0].epoch == 3


class TestCollectorMetrics:
    def test_counters_track_workload(self):
        dataset, manager = _populated_manager()
        metrics = manager.collector.metrics
        assert metrics.component_writes > 0
        assert metrics.writes_by_event.get("flush", 0) > 0
        assert metrics.synopses_published == 2 * metrics.component_writes
        # 500 inserts into primary + secondary observations; deletes add
        # anti-matter on both indexes.
        assert metrics.matter_records_observed > 0
        assert metrics.antimatter_records_observed > 0
        assert metrics.finalize_seconds > 0

    def test_merge_events_counted(self):
        dataset, manager = _populated_manager(
            merge_policy=ConstantMergePolicy(2)
        )
        metrics = manager.collector.metrics
        assert metrics.writes_by_event.get("merge", 0) > 0
