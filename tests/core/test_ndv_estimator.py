"""Single-node NDV lane: twin registrations, lazy union cache, interval.

Complements the cluster lifecycle tests: here the catalog and cache
are in-process, so eviction/readmission exactness and the anti-matter
interval semantics can be pinned down precisely.
"""

import pytest

from repro.core import StatisticsConfig, StatisticsManager
from repro.errors import SynopsisError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.synopses.hll import HyperLogLogSynopsis, ndv_statistics_key
from repro.types import Domain

PK_DOMAIN = Domain(0, 2**20 - 1)
VALUE_DOMAIN = Domain(0, 1023)


def _setup(ndv_precision=7, **config_kwargs):
    dataset = Dataset(
        "ds",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=PK_DOMAIN,
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        memtable_capacity=64,
    )
    manager = StatisticsManager(
        StatisticsConfig(
            SynopsisType.EQUI_WIDTH,
            budget=32,
            ndv_enabled=True,
            ndv_precision=ndv_precision,
            **config_kwargs,
        )
    )
    manager.attach(dataset)
    return dataset, manager


def _ingest(dataset, records=600, delete_every=None):
    for pk in range(records):
        dataset.insert({"id": pk, "value": (pk * 7) % 1024})
    if delete_every:
        for pk in range(0, records, delete_every):
            dataset.delete(pk)
    dataset.flush()


class TestTwinRegistrations:
    def test_every_target_gets_an_ndv_twin(self):
        dataset, manager = _setup()
        keys = manager.collector.registered_keys()
        for base in (dataset.primary.name, dataset.secondary_tree("value_idx").name):
            assert base in keys
            assert ndv_statistics_key(base) in keys

    def test_disabled_config_registers_no_twins(self):
        dataset = Dataset(
            "ds2",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=PK_DOMAIN,
        )
        manager = StatisticsManager(
            StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=32)
        )
        manager.attach(dataset)
        assert not any(
            "#ndv" in key for key in manager.collector.registered_keys()
        )
        _ingest(dataset, records=100)
        with pytest.raises(SynopsisError):
            manager.estimate_ndv(dataset)

    def test_catalog_holds_hll_pairs_under_ndv_keys(self):
        dataset, manager = _setup()
        _ingest(dataset)
        key = ndv_statistics_key(dataset.primary.name)
        entries = manager.catalog.entries_for(key)
        assert entries
        for entry in entries:
            assert isinstance(entry.synopsis, HyperLogLogSynopsis)
            assert isinstance(entry.anti_synopsis, HyperLogLogSynopsis)
            # Dense-resident accounting: 32-byte header + one byte per
            # register, not the histogram families' 16 bytes/element.
            assert entry.synopsis.payload_bytes() == 32 + 128

    def test_range_lane_unaffected(self):
        dataset, manager = _setup()
        _ingest(dataset)
        true = dataset.count_secondary_range("value_idx", 0, 511)
        assert manager.estimate(dataset, "value_idx", 0, 511) == pytest.approx(
            true, rel=0.25
        )


class TestAntiMatterInterval:
    def test_insert_only_interval_collapses(self):
        dataset, manager = _setup()
        _ingest(dataset)
        detail = manager.estimate_ndv_detailed(dataset)
        assert detail.anti_ndv == 0.0
        assert detail.lower == detail.upper == detail.ndv
        assert detail.matter_ndv == pytest.approx(600, rel=3 * 1.04 / 128**0.5)

    def test_deletes_open_the_interval_conservatively(self):
        dataset, manager = _setup()
        _ingest(dataset, records=600, delete_every=3)
        detail = manager.estimate_ndv_detailed(dataset)
        assert detail.anti_ndv > 0.0
        assert detail.lower < detail.upper
        assert detail.ndv == detail.lower  # point pinned to the floor
        assert detail.upper == detail.matter_ndv
        # True live NDV (400) must sit inside the (3-sigma-padded) band.
        sigma = 1.04 / 128**0.5
        assert detail.lower * (1 - 3 * sigma) <= 400
        assert 400 <= detail.upper * (1 + 3 * sigma)

    def test_lower_bound_clamps_at_zero(self):
        dataset, manager = _setup()
        _ingest(dataset, records=200, delete_every=1)  # delete everything
        detail = manager.estimate_ndv_detailed(dataset)
        assert detail.lower >= 0.0
        assert detail.ndv >= 0.0


class TestLazyUnionCache:
    def test_slow_path_then_cache_hit_same_answer(self):
        dataset, manager = _setup()
        _ingest(dataset)
        slow = manager.estimate_ndv_detailed(dataset)
        assert not slow.from_cache and slow.synopses_consulted > 1
        hit = manager.estimate_ndv_detailed(dataset)
        assert hit.from_cache and hit.synopses_consulted == 0
        assert hit.ndv == slow.ndv

    def test_new_component_invalidates_cached_union(self):
        dataset, manager = _setup()
        _ingest(dataset)
        manager.estimate_ndv(dataset)
        _ingest(dataset, records=100)  # fresh publishes bump the version
        refreshed = manager.estimate_ndv_detailed(dataset)
        assert not refreshed.from_cache

    def test_evicted_and_readmitted_union_stays_exact(self):
        """Capacity pressure evicts the cached NDV pair; the deterministic
        re-union on the next estimate must reproduce it exactly."""
        dataset, manager = _setup()
        _ingest(dataset, records=600, delete_every=4)
        baseline = manager.estimate_ndv_detailed(dataset)
        key = ndv_statistics_key(dataset.primary.name)
        version = manager.catalog.version_for(key)
        cached_before = manager.cache.get(key, version)
        assert cached_before is not None
        registers = bytes(cached_before.synopsis.registers)
        anti_registers = bytes(cached_before.anti_synopsis.registers)

        # Make the range lane's cached pair the hot end, then shrink:
        # the cache keeps >= 1 entry, so the cold NDV pair is the victim.
        manager.estimate(dataset, "value_idx", 0, 511)
        manager.cache.set_capacity(1)
        assert manager.cache.get(key, version) is None
        manager.cache.set_capacity(None)

        readmitted = manager.estimate_ndv_detailed(dataset)
        assert not readmitted.from_cache
        assert (readmitted.ndv, readmitted.lower, readmitted.upper) == (
            baseline.ndv,
            baseline.lower,
            baseline.upper,
        )
        cached_after = manager.cache.get(key, version)
        assert cached_after is not None
        assert bytes(cached_after.synopsis.registers) == registers
        assert bytes(cached_after.anti_synopsis.registers) == anti_registers

    def test_union_counter_moves_on_slow_path_only(self):
        dataset, manager = _setup()
        _ingest(dataset)
        counter = manager.registry.snapshot()["counters"]
        before = counter.get("sketch.union.count", 0)
        manager.estimate_ndv(dataset)
        mid = manager.registry.snapshot()["counters"]["sketch.union.count"]
        assert mid > before
        manager.estimate_ndv(dataset)  # cache hit: no further unions
        after = manager.registry.snapshot()["counters"]["sketch.union.count"]
        assert after == mid
