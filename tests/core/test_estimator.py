"""Focused tests for Algorithm 2's edge cases."""

import pytest

from repro.core.cache import MergedSynopsisCache
from repro.core.catalog import StatisticsCatalog
from repro.core.estimator import CardinalityEstimator
from repro.obs.registry import MetricsRegistry
from repro.synopses import SynopsisType, create_builder
from repro.types import Domain

DOMAIN = Domain(0, 99)


def _synopsis(values=(), synopsis_type=SynopsisType.EQUI_WIDTH, budget=10):
    builder = create_builder(synopsis_type, DOMAIN, budget, len(values))
    for value in sorted(values):
        builder.add(value)
    return builder.build()


def _estimator(cache=True, registry=None):
    catalog = StatisticsCatalog()
    estimator = CardinalityEstimator(
        catalog, MergedSynopsisCache(registry) if cache else None, registry
    )
    return catalog, estimator


def test_empty_catalog_estimates_zero():
    _catalog, estimator = _estimator()
    result = estimator.estimate_detailed("idx", 0, 99)
    assert result.estimate == 0.0
    assert result.synopses_consulted == 0
    assert not result.from_cache


def test_single_entry():
    catalog, estimator = _estimator()
    catalog.put("idx", "n", 0, 1, _synopsis([10, 20, 30]), _synopsis())
    assert estimator.estimate("idx", 0, 99) == pytest.approx(3)


def test_antimatter_subtraction():
    catalog, estimator = _estimator()
    catalog.put("idx", "n", 0, 1, _synopsis([10, 20, 30]), _synopsis())
    catalog.put("idx", "n", 0, 2, _synopsis(), _synopsis([20]))
    assert estimator.estimate("idx", 0, 99) == pytest.approx(2)


def test_total_clamped_nonnegative():
    catalog, estimator = _estimator()
    # Pathological: more anti-matter than matter (possible when a
    # tombstone's matter record never reached disk).
    catalog.put("idx", "n", 0, 1, _synopsis(), _synopsis([5, 6, 7]))
    assert estimator.estimate("idx", 0, 99) == 0.0


def test_cache_roundtrip_and_consistency():
    catalog, estimator = _estimator()
    catalog.put("idx", "n", 0, 1, _synopsis([1, 2]), _synopsis())
    catalog.put("idx", "n", 0, 2, _synopsis([3]), _synopsis([1]))
    cold = estimator.estimate_detailed("idx", 0, 99)
    warm = estimator.estimate_detailed("idx", 0, 99)
    assert not cold.from_cache and warm.from_cache
    assert warm.estimate == pytest.approx(cold.estimate)
    assert warm.synopses_consulted == 0


def test_no_cache_configured():
    catalog, estimator = _estimator(cache=False)
    catalog.put("idx", "n", 0, 1, _synopsis([1]), _synopsis())
    first = estimator.estimate_detailed("idx", 0, 99)
    second = estimator.estimate_detailed("idx", 0, 99)
    assert not first.from_cache and not second.from_cache
    assert second.synopses_consulted == 1


def test_unmergeable_entries_never_cached():
    catalog, estimator = _estimator()
    catalog.put(
        "idx", "n", 0, 1,
        _synopsis([1, 2], SynopsisType.EQUI_HEIGHT),
        _synopsis((), SynopsisType.EQUI_HEIGHT),
    )
    estimator.estimate("idx", 0, 99)
    result = estimator.estimate_detailed("idx", 0, 99)
    assert not result.from_cache


def test_mixed_synopsis_types_fall_back_to_per_component():
    # A catalog can transiently hold different types (e.g. after a
    # reconfiguration); merging is skipped, summation still works.
    catalog, estimator = _estimator()
    catalog.put("idx", "n", 0, 1, _synopsis([1], SynopsisType.EQUI_WIDTH), _synopsis())
    catalog.put(
        "idx", "n", 0, 2,
        _synopsis([2], SynopsisType.EQUI_HEIGHT),
        _synopsis((), SynopsisType.EQUI_HEIGHT),
    )
    with pytest.raises(Exception):
        # Mixed types cannot merge; the estimator must not try.
        _synopsis([1]).merge_with(_synopsis((), SynopsisType.EQUI_HEIGHT))
    assert estimator.estimate("idx", 0, 99) == pytest.approx(2)


def test_single_entry_counts_no_lazy_merge():
    """Regression: one catalog entry means nothing was merged, so the
    lazy-merge counter/histogram must not move and the catalog-owned
    synopsis objects must not be aliased into the cache."""
    registry = MetricsRegistry()
    catalog, estimator = _estimator(registry=registry)
    catalog.put("idx", "n", 0, 1, _synopsis([10, 20, 30]), _synopsis())
    estimator.estimate("idx", 0, 99)
    counters = registry.snapshot()["counters"]
    histograms = registry.snapshot()["histograms"]
    assert counters.get("estimator.lazy_merge.count", 0) == 0
    assert histograms.get("estimator.lazy_merge.seconds", {}).get("count", 0) == 0
    assert len(estimator.cache) == 0


def test_multi_entry_counts_one_lazy_merge_and_does_not_alias():
    registry = MetricsRegistry()
    catalog, estimator = _estimator(registry=registry)
    entry1 = catalog.put("idx", "n", 0, 1, _synopsis([1, 2]), _synopsis())
    entry2 = catalog.put("idx", "n", 0, 2, _synopsis([3]), _synopsis([1]))
    estimator.estimate("idx", 0, 99)
    counters = registry.snapshot()["counters"]
    assert counters["estimator.lazy_merge.count"] == 1
    histograms = registry.snapshot()["histograms"]
    assert histograms["estimator.lazy_merge.seconds"]["count"] == 1
    cached = estimator.cache.get("idx", catalog.version_for("idx"))
    assert cached is not None
    catalog_objects = {
        id(entry1.synopsis), id(entry1.anti_synopsis),
        id(entry2.synopsis), id(entry2.anti_synopsis),
    }
    assert id(cached.synopsis) not in catalog_objects
    assert id(cached.anti_synopsis) not in catalog_objects


def test_overhead_recorded():
    catalog, estimator = _estimator()
    catalog.put("idx", "n", 0, 1, _synopsis([1]), _synopsis())
    result = estimator.estimate_detailed("idx", 0, 99)
    assert result.overhead_seconds > 0
