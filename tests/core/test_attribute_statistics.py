"""Tests for unsorted-attribute statistics (the Section 5 extension)."""

import pytest

from repro.core import StatisticsConfig, StatisticsManager
from repro.errors import ConfigurationError
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.types import Domain

AGE_DOMAIN = Domain(0, 120)


def _setup(synopsis_type=SynopsisType.GK_SKETCH, memtable_capacity=64):
    dataset = Dataset(
        "people",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", Domain(0, 999))],
        memtable_capacity=memtable_capacity,
    )
    manager = StatisticsManager(StatisticsConfig(synopsis_type, budget=128))
    manager.attach(dataset)
    manager.register_attribute(dataset, "age", AGE_DOMAIN)
    return dataset, manager


def _doc(pk):
    # Age is NOT indexed and arrives in PK order -> unsorted by age.
    return {"id": pk, "value": pk % 1000, "age": (pk * 37) % 120}


class TestUnsortedAttributeStatistics:
    @pytest.mark.parametrize(
        "synopsis_type",
        [SynopsisType.GK_SKETCH, SynopsisType.RESERVOIR_SAMPLE],
    )
    def test_estimates_track_truth(self, synopsis_type):
        dataset, manager = _setup(synopsis_type)
        for pk in range(2000):
            dataset.insert(_doc(pk))
        dataset.flush()
        true_count = sum(
            1 for pk in range(2000) if 30 <= (pk * 37) % 120 <= 60
        )
        estimate = manager.estimate_attribute(dataset, "age", 30, 60)
        assert estimate == pytest.approx(true_count, rel=0.25)

    def test_sorted_only_types_rejected(self):
        dataset = Dataset(
            "d",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 10**6),
        )
        manager = StatisticsManager(
            StatisticsConfig(SynopsisType.EQUI_WIDTH, budget=64)
        )
        manager.attach(dataset)
        with pytest.raises(ConfigurationError):
            manager.register_attribute(dataset, "age", AGE_DOMAIN)

    def test_index_and_attribute_stats_coexist(self):
        dataset, manager = _setup()
        for pk in range(500):
            dataset.insert(_doc(pk))
        dataset.flush()
        # Index-key statistics still answer (GK over sorted SKs is fine);
        # 500 records with value = pk % 1000 all land in [0, 499].
        index_estimate = manager.estimate(dataset, "value_idx", 0, 499)
        assert index_estimate == pytest.approx(500, rel=0.1)
        assert manager.estimate(dataset, "value_idx", 0, 249) == pytest.approx(
            250, rel=0.25
        )
        attribute_estimate = manager.estimate_attribute(dataset, "age", 0, 119)
        assert attribute_estimate == pytest.approx(500, rel=0.05)

    def test_merge_retracts_attribute_entries(self):
        from repro.core.collector import attribute_statistics_key

        dataset, manager = _setup(memtable_capacity=100)
        for pk in range(500):
            dataset.insert(_doc(pk))
        dataset.flush()
        key = attribute_statistics_key(dataset.primary.name, "age")
        before = manager.catalog.entry_count(key)
        assert before > 1
        dataset.primary.merge(dataset.primary.components)
        assert manager.catalog.entry_count(key) == 1

    def test_missing_attribute_skipped(self):
        dataset, manager = _setup()
        for pk in range(100):
            document = _doc(pk)
            if pk % 2 == 0:
                del document["age"]
            dataset.insert(document)
        dataset.flush()
        estimate = manager.estimate_attribute(dataset, "age", 0, 119)
        assert estimate == pytest.approx(50, rel=0.1)

    def test_nostats_manager_noop(self):
        dataset = Dataset(
            "d",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 10**6),
        )
        manager = StatisticsManager(StatisticsConfig.disabled())
        manager.attach(dataset)
        manager.register_attribute(dataset, "age", AGE_DOMAIN)  # no-op
        dataset.insert({"id": 1, "age": 30})
        dataset.flush()
        assert manager.estimate_attribute(dataset, "age", 0, 119) == 0.0
