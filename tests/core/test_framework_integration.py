"""End-to-end tests of the statistics framework over the LSM engine.

The key invariant: driving the GROUND_TRUTH synopsis type through the
whole pipeline (event taps -> anti-matter twins -> catalog -> Algorithm
2 combination) must yield *exact* cardinalities for any workload.  Any
deviation is a plumbing bug in the framework rather than approximation
error.
"""

import pytest

from repro.core import StatisticsConfig, StatisticsManager
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.merge_policy import ConstantMergePolicy, StackMergePolicy
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.types import Domain

VALUE_DOMAIN = Domain(0, 999)


def _setup(synopsis_type=SynopsisType.GROUND_TRUTH, budget=256, **dataset_kwargs):
    dataset = Dataset(
        "ds",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        **dataset_kwargs,
    )
    manager = StatisticsManager(StatisticsConfig(synopsis_type, budget))
    manager.attach(dataset)
    return dataset, manager


def _doc(pk, value):
    return {"id": pk, "value": value}


class TestGroundTruthExactness:
    def test_insert_only(self):
        dataset, manager = _setup(memtable_capacity=32)
        for pk in range(200):
            dataset.insert(_doc(pk, (pk * 7) % 1000))
        dataset.flush()
        for lo, hi in [(0, 999), (100, 300), (500, 500), (990, 999)]:
            true = dataset.count_secondary_range("value_idx", lo, hi)
            assert manager.estimate(dataset, "value_idx", lo, hi) == pytest.approx(true)

    def test_with_updates_and_deletes(self):
        dataset, manager = _setup(memtable_capacity=25)
        for pk in range(150):
            dataset.insert(_doc(pk, pk % 1000))
        dataset.flush()
        for pk in range(0, 150, 2):
            dataset.update(_doc(pk, (pk + 500) % 1000))
        for pk in range(0, 150, 5):
            dataset.delete(pk)
        dataset.flush()
        for lo, hi in [(0, 999), (0, 99), (400, 700)]:
            true = dataset.count_secondary_range("value_idx", lo, hi)
            assert manager.estimate(dataset, "value_idx", lo, hi) == pytest.approx(true)

    def test_with_full_merges(self):
        dataset, manager = _setup(
            memtable_capacity=20, merge_policy=ConstantMergePolicy(3)
        )
        for pk in range(300):
            dataset.insert(_doc(pk, (pk * 13) % 1000))
        for pk in range(0, 300, 4):
            dataset.delete(pk)
        dataset.flush()
        true = dataset.count_secondary_range("value_idx", 0, 999)
        assert manager.estimate(dataset, "value_idx", 0, 999) == pytest.approx(true)

    def test_with_partial_merges(self):
        dataset, manager = _setup(
            memtable_capacity=16, merge_policy=StackMergePolicy(4)
        )
        for pk in range(200):
            dataset.insert(_doc(pk, (pk * 3) % 1000))
        for pk in range(0, 200, 3):
            dataset.delete(pk)
        dataset.flush()
        for lo, hi in [(0, 999), (100, 450)]:
            true = dataset.count_secondary_range("value_idx", lo, hi)
            assert manager.estimate(dataset, "value_idx", lo, hi) == pytest.approx(true)

    def test_primary_key_statistics(self):
        dataset, manager = _setup(memtable_capacity=50)
        for pk in range(120):
            dataset.insert(_doc(pk, 0))
        dataset.flush()
        assert manager.estimate(dataset, "primary", 10, 59) == pytest.approx(50)

    def test_bulkload_statistics(self):
        dataset, manager = _setup()
        dataset.bulkload([_doc(pk, pk % 1000) for pk in range(500)])
        true = dataset.count_secondary_range("value_idx", 200, 299)
        assert manager.estimate(dataset, "value_idx", 200, 299) == pytest.approx(true)


@pytest.mark.parametrize(
    "synopsis_type",
    [SynopsisType.EQUI_WIDTH, SynopsisType.EQUI_HEIGHT, SynopsisType.WAVELET],
)
class TestApproximateSynopses:
    def test_reasonable_accuracy_uniform_data(self, synopsis_type):
        dataset, manager = _setup(synopsis_type, budget=128, memtable_capacity=64)
        for pk in range(1000):
            dataset.insert(_doc(pk, pk % 1000))
        dataset.flush()
        true = dataset.count_secondary_range("value_idx", 100, 299)
        estimate = manager.estimate(dataset, "value_idx", 100, 299)
        assert estimate == pytest.approx(true, rel=0.15)

    def test_antimatter_subtraction(self, synopsis_type):
        dataset, manager = _setup(synopsis_type, budget=128, memtable_capacity=64)
        for pk in range(500):
            dataset.insert(_doc(pk, pk % 500))
        dataset.flush()
        # Delete everything with value < 250 -> anti-matter on disk.
        for pk in range(250):
            dataset.delete(pk)
        dataset.flush()
        estimate = manager.estimate(dataset, "value_idx", 0, 249)
        true = dataset.count_secondary_range("value_idx", 0, 249)
        assert estimate == pytest.approx(true, abs=25)


class TestCatalogMaintenance:
    def test_merge_retracts_old_entries(self):
        dataset, manager = _setup(memtable_capacity=20)
        for pk in range(100):
            dataset.insert(_doc(pk, pk))
        dataset.flush()
        tree = dataset.secondary_tree("value_idx")
        index_name = tree.name
        before = manager.catalog.entry_count(index_name)
        assert before == len(tree.components)
        tree.merge(tree.components)
        after_entries = manager.catalog.entries_for(index_name)
        assert len(after_entries) == 1
        assert after_entries[0].component_uid == tree.components[0].uid

    def test_nostats_baseline_collects_nothing(self):
        dataset = Dataset(
            "ds",
            SimulatedDisk(),
            primary_key="id",
            primary_domain=Domain(0, 10**6),
            indexes=[IndexSpec("value_idx", "value", VALUE_DOMAIN)],
        )
        manager = StatisticsManager(StatisticsConfig.disabled())
        manager.attach(dataset)
        for pk in range(50):
            dataset.insert(_doc(pk, pk))
        dataset.flush()
        assert manager.catalog.entry_count() == 0
        assert manager.estimate(dataset, "value_idx", 0, 999) == 0.0


class TestCaching:
    def test_cache_hit_after_first_estimate(self):
        dataset, manager = _setup(SynopsisType.EQUI_WIDTH, memtable_capacity=20)
        for pk in range(100):
            dataset.insert(_doc(pk, pk))
        dataset.flush()
        first = manager.estimate_detailed(dataset, "value_idx", 0, 500)
        second = manager.estimate_detailed(dataset, "value_idx", 0, 500)
        assert not first.from_cache
        assert second.from_cache
        assert second.estimate == pytest.approx(first.estimate)

    def test_new_flush_invalidates_cache(self):
        dataset, manager = _setup(SynopsisType.EQUI_WIDTH, memtable_capacity=1000)
        for pk in range(50):
            dataset.insert(_doc(pk, pk))
        dataset.flush()
        manager.estimate(dataset, "value_idx", 0, 999)
        for pk in range(50, 100):
            dataset.insert(_doc(pk, pk))
        dataset.flush()
        result = manager.estimate_detailed(dataset, "value_idx", 0, 999)
        assert not result.from_cache
        assert result.estimate == pytest.approx(100, rel=0.05)

    def test_equi_height_never_cached(self):
        dataset, manager = _setup(SynopsisType.EQUI_HEIGHT, memtable_capacity=20)
        for pk in range(100):
            dataset.insert(_doc(pk, pk))
        dataset.flush()
        manager.estimate(dataset, "value_idx", 0, 999)
        result = manager.estimate_detailed(dataset, "value_idx", 0, 999)
        assert not result.from_cache
        assert result.synopses_consulted > 0
