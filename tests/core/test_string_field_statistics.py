"""End-to-end test of the Section 3.1 dictionary-encoding hook:
statistics on a string field via order-preserving integer codes."""

import pytest

from repro.core import StatisticsConfig, StatisticsManager
from repro.lsm.dataset import Dataset, IndexSpec
from repro.lsm.storage import SimulatedDisk
from repro.synopses import SynopsisType
from repro.types import Domain
from repro.workloads.dictionary import StringDictionary

COUNTRIES = ["brazil", "canada", "france", "germany", "india", "japan", "peru"]


def test_statistics_on_dictionary_encoded_strings():
    dictionary = StringDictionary.frozen_sorted(COUNTRIES)
    code_domain = dictionary.code_domain()

    dataset = Dataset(
        "users",
        SimulatedDisk(),
        primary_key="id",
        primary_domain=Domain(0, 10**6),
        indexes=[IndexSpec("country_idx", "country_code", code_domain)],
        memtable_capacity=128,
    )
    manager = StatisticsManager(StatisticsConfig(SynopsisType.EQUI_WIDTH, 16))
    manager.attach(dataset)

    # Skewed membership: early alphabet countries dominate.
    for pk in range(700):
        country = COUNTRIES[pk % 7 if pk % 3 else 0]
        dataset.insert(
            {"id": pk, "country": country, "country_code": dictionary.encode(country)}
        )
    dataset.flush()

    # Equality predicate on a string value becomes a point range on codes.
    code = dictionary.encode("brazil")
    true = dataset.count_secondary_range("country_idx", code, code)
    estimate = manager.estimate(dataset, "country_idx", code, code)
    assert estimate == pytest.approx(true, rel=0.05)

    # Lexicographic BETWEEN 'canada' AND 'india' works because codes
    # preserve the sort order (frozen_sorted).
    lo = dictionary.encode("canada")
    hi = dictionary.encode("india")
    true_range = dataset.count_secondary_range("country_idx", lo, hi)
    estimate_range = manager.estimate(dataset, "country_idx", lo, hi)
    assert estimate_range == pytest.approx(true_range, rel=0.05)

    # And decoding maps results back to strings.
    assert dictionary.decode(code) == "brazil"
