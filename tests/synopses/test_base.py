"""Builder/synopsis contract tests shared across synopsis types."""

import pytest

from repro.errors import MergeabilityError, SynopsisError
from repro.synopses import SynopsisType, create_builder
from repro.types import Domain

ALL_TYPES = list(SynopsisType)
DOMAIN = Domain(0, 99)


@pytest.mark.parametrize("synopsis_type", ALL_TYPES)
class TestBuilderContract:
    def test_sorted_input_contract(self, synopsis_type):
        builder = create_builder(synopsis_type, DOMAIN, 8, 10)
        builder.add(5)
        if synopsis_type.requires_sorted_input:
            with pytest.raises(SynopsisError):
                builder.add(4)
        else:
            # Sketches and samples accept arbitrary order (Section 5).
            builder.add(4)
            assert builder.build().total_count == 2

    def test_allows_duplicates(self, synopsis_type):
        builder = create_builder(synopsis_type, DOMAIN, 8, 10)
        builder.add(5)
        builder.add(5)
        builder.add(5)
        assert builder.build().total_count == 3

    def test_rejects_out_of_domain(self, synopsis_type):
        builder = create_builder(synopsis_type, DOMAIN, 8, 10)
        with pytest.raises(SynopsisError):
            builder.add(100)
        with pytest.raises(SynopsisError):
            builder.add(-1)

    def test_single_use(self, synopsis_type):
        builder = create_builder(synopsis_type, DOMAIN, 8, 10)
        builder.build()
        with pytest.raises(SynopsisError):
            builder.add(1)
        with pytest.raises(SynopsisError):
            builder.build()

    def test_empty_stream(self, synopsis_type):
        synopsis = create_builder(synopsis_type, DOMAIN, 8, 0).build()
        assert synopsis.total_count == 0
        assert synopsis.estimate(0, 99) == 0.0

    def test_budget_respected(self, synopsis_type):
        if synopsis_type is SynopsisType.GROUND_TRUTH:
            pytest.skip("ground truth is unbounded by design")
        builder = create_builder(synopsis_type, DOMAIN, 4, 100)
        for value in range(100):
            builder.add(value)
        synopsis = builder.build()
        assert synopsis.element_count <= 4

    def test_estimate_clipped_to_domain(self, synopsis_type):
        builder = create_builder(synopsis_type, DOMAIN, 8, 3)
        for value in (10, 50, 90):
            builder.add(value)
        synopsis = builder.build()
        assert synopsis.estimate(-1000, 1000) == pytest.approx(
            synopsis.estimate(0, 99)
        )
        assert synopsis.estimate(200, 300) == 0.0
        assert synopsis.estimate(-10, -5) == 0.0

    def test_payload_roundtrip(self, synopsis_type):
        from repro.synopses import synopsis_from_payload

        builder = create_builder(synopsis_type, DOMAIN, 8, 20)
        for value in range(0, 100, 5):
            builder.add(value)
        synopsis = builder.build()
        clone = synopsis_from_payload(synopsis.to_payload())
        for lo, hi in [(0, 99), (10, 20), (37, 37), (80, 99)]:
            assert clone.estimate(lo, hi) == pytest.approx(synopsis.estimate(lo, hi))

    def test_invalid_budget(self, synopsis_type):
        with pytest.raises(SynopsisError):
            create_builder(synopsis_type, DOMAIN, 0, 10)


class TestMergeability:
    def _build(self, synopsis_type, values, budget=8):
        builder = create_builder(synopsis_type, DOMAIN, budget, len(values))
        for value in values:
            builder.add(value)
        return builder.build()

    def test_flags_match_paper(self):
        assert SynopsisType.EQUI_WIDTH.mergeable
        assert SynopsisType.WAVELET.mergeable
        assert not SynopsisType.EQUI_HEIGHT.mergeable

    def test_equi_height_merge_raises(self):
        a = self._build(SynopsisType.EQUI_HEIGHT, [1, 2, 3])
        b = self._build(SynopsisType.EQUI_HEIGHT, [4, 5, 6])
        with pytest.raises(MergeabilityError):
            a.merge_with(b)

    def test_cross_type_merge_raises(self):
        a = self._build(SynopsisType.EQUI_WIDTH, [1, 2, 3])
        b = self._build(SynopsisType.WAVELET, [4, 5, 6])
        with pytest.raises(MergeabilityError):
            a.merge_with(b)

    def test_mismatched_budget_raises(self):
        a = self._build(SynopsisType.EQUI_WIDTH, [1, 2, 3], budget=8)
        b = self._build(SynopsisType.EQUI_WIDTH, [1, 2, 3], budget=16)
        with pytest.raises(MergeabilityError):
            a.merge_with(b)

    def test_mismatched_domain_raises(self):
        a = self._build(SynopsisType.EQUI_WIDTH, [1, 2, 3])
        other = create_builder(SynopsisType.EQUI_WIDTH, Domain(0, 49), 8, 0).build()
        with pytest.raises(MergeabilityError):
            a.merge_with(other)

    @pytest.mark.parametrize(
        "synopsis_type",
        [SynopsisType.EQUI_WIDTH, SynopsisType.WAVELET, SynopsisType.GROUND_TRUTH],
    )
    def test_merge_total_count_adds(self, synopsis_type):
        a = self._build(synopsis_type, [1, 2, 3])
        b = self._build(synopsis_type, [50, 60])
        assert a.merge_with(b).total_count == 5
