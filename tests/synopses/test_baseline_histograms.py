"""Tests for the V-optimal and MaxDiff baseline histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.maxdiff import MaxDiffBuilder
from repro.synopses.voptimal import VOptimalBuilder, v_optimal_partition
from repro.types import Domain

DOMAIN = Domain(0, 999)


def _build(builder_cls, values, budget=8, **kwargs):
    builder = builder_cls(DOMAIN, budget, **kwargs)
    for value in sorted(values):
        builder.add(value)
    return builder.build()


class TestVOptimalPartition:
    def test_empty(self):
        assert v_optimal_partition(np.array([]), 4) == []

    def test_single_item(self):
        assert v_optimal_partition(np.array([5.0]), 4) == [1]

    def test_fewer_items_than_buckets(self):
        ends = v_optimal_partition(np.array([1.0, 2.0]), 10)
        assert ends == [1, 2]  # each item its own bucket

    def test_finds_obvious_split(self):
        # Two flat plateaus -> the single border must fall between them.
        frequencies = np.array([10.0] * 5 + [100.0] * 5)
        assert v_optimal_partition(frequencies, 2) == [5, 10]

    def test_zero_error_when_buckets_suffice(self):
        frequencies = np.array([3.0, 3.0, 9.0, 9.0, 1.0, 1.0])
        ends = v_optimal_partition(frequencies, 3)
        assert ends == [2, 4, 6]

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        frequencies = rng.integers(1, 50, size=9).astype(float)

        def sse(segment):
            return float(np.sum((segment - segment.mean()) ** 2))

        import itertools

        best = None
        for borders in itertools.combinations(range(1, 9), 2):
            cuts = [0, *borders, 9]
            cost = sum(
                sse(frequencies[cuts[i] : cuts[i + 1]]) for i in range(3)
            )
            if best is None or cost < best:
                best = cost
        ends = v_optimal_partition(frequencies, 3)
        cuts = [0, *ends]
        dp_cost = sum(
            sse(frequencies[cuts[i] : cuts[i + 1]]) for i in range(len(ends))
        )
        assert dp_cost == pytest.approx(best)


class TestVOptimalHistogram:
    def test_structure(self):
        h = _build(VOptimalBuilder, [1] * 50 + [500] * 50, budget=4)
        assert h.element_count <= 4
        assert h.total_count == 100
        assert h.estimate(0, 999) == pytest.approx(100)

    def test_isolates_skew(self):
        # Heavy value 10, light tail: v-optimal separates them cleanly.
        values = [10] * 1000 + list(range(100, 200))
        h = _build(VOptimalBuilder, values, budget=8)
        assert h.estimate(10, 10) == pytest.approx(1000, rel=0.01)

    def test_distinct_value_guard(self):
        builder = VOptimalBuilder(DOMAIN, 4, max_distinct_values=3)
        for value in (1, 2, 3):
            builder.add(value)
        with pytest.raises(SynopsisError):
            builder.add(4)


class TestMaxDiff:
    def test_structure(self):
        h = _build(MaxDiffBuilder, list(range(100)), budget=8)
        assert h.element_count <= 8
        assert h.total_count == 100
        assert h.estimate(0, 999) == pytest.approx(100)

    def test_border_at_area_jump(self):
        # Uniform low frequencies, one huge spike at 50: borders must
        # bracket the spike so its mass stays inside one bucket and
        # does not leak into the tail.
        values = []
        for v in range(0, 100, 10):
            values.extend([v] * 2)
        values.extend([50] * 500)
        h = _build(MaxDiffBuilder, values, budget=6)
        assert h.estimate(41, 50) == pytest.approx(502, rel=0.05)
        assert h.estimate(60, 99) < 30

    def test_single_value(self):
        h = _build(MaxDiffBuilder, [7, 7, 7], budget=4)
        assert h.borders == [7]
        assert h.estimate(7, 7) == pytest.approx(3)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 999), max_size=150), st.integers(1, 12))
def test_baselines_preserve_totals(values, budget):
    for builder_cls in (VOptimalBuilder, MaxDiffBuilder):
        h = _build(builder_cls, values, budget=budget)
        assert h.estimate(0, 999) == pytest.approx(len(values))
        assert h.element_count <= budget
