"""Tests for the Greenwald-Khanna sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.gk import GKSketch, GKSketchBuilder
from repro.types import Domain

DOMAIN = Domain(0, 9999)


def _build(values, budget=64):
    builder = GKSketchBuilder(DOMAIN, budget)
    for value in values:
        builder.add(value)
    return builder.build()


class TestRank:
    def test_empty(self):
        sketch = _build([])
        assert sketch.rank(500) == 0.0
        assert sketch.estimate(0, 9999) == 0.0

    def test_extremes_exact(self):
        values = list(range(0, 1000))
        sketch = _build(values, budget=32)
        assert sketch.rank(-1) == 0.0
        assert sketch.rank(999) == 1000.0
        assert sketch.rank(10_000) == 1000.0

    def test_rank_error_bounded(self):
        n = 2000
        values = list(range(n))
        budget = 64
        sketch = _build(values, budget=budget)
        # GK guarantees eps*n rank error with eps = 1/budget; the hard
        # cap can degrade this slightly, so allow a 3x cushion.
        allowance = 3 * n / budget
        for probe in range(0, n, 97):
            true_rank = probe + 1
            assert abs(sketch.rank(probe) - true_rank) <= allowance

    def test_unsorted_input(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 10_000, size=3000)
        sketch_unsorted = _build(list(values), budget=64)
        estimate = sketch_unsorted.estimate(2000, 4000)
        true_count = int(np.sum((values >= 2000) & (values <= 4000)))
        assert estimate == pytest.approx(true_count, rel=0.2)

    def test_budget_respected(self):
        sketch = _build(list(range(5000)), budget=32)
        assert sketch.element_count <= 32


class TestMerge:
    def test_merge_preserves_total(self):
        a = _build(list(range(0, 1000)), budget=64)
        b = _build(list(range(1000, 1500)), budget=64)
        merged = a.merge_with(b)
        assert merged.total_count == 1500
        assert merged.element_count <= 64
        assert merged.estimate(0, 9999) == pytest.approx(1500, rel=0.05)

    def test_merge_accuracy(self):
        rng = np.random.default_rng(2)
        values_a = rng.integers(0, 5000, size=2000)
        values_b = rng.integers(3000, 9000, size=2000)
        merged = _build(list(values_a)).merge_with(_build(list(values_b)))
        combined = np.concatenate([values_a, values_b])
        for lo, hi in [(0, 9999), (1000, 4000), (6000, 9000)]:
            true_count = int(np.sum((combined >= lo) & (combined <= hi)))
            assert merged.estimate(lo, hi) == pytest.approx(
                true_count, rel=0.25, abs=100
            )


class TestValidation:
    def test_budget_overflow_rejected(self):
        with pytest.raises(SynopsisError):
            GKSketch(DOMAIN, 1, [(1, 1, 0), (2, 1, 0)], 2)

    def test_payload_roundtrip(self):
        sketch = _build(list(range(100)), budget=16)
        clone = GKSketch.from_payload(sketch.to_payload())
        assert clone.entries == sketch.entries
        assert clone.rank(50) == sketch.rank(50)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 9999), max_size=400), st.integers(8, 64))
def test_rank_bounds_property(values, budget):
    sketch = _build(values, budget=budget)
    n = len(values)
    assert sketch.estimate(0, 9999) == pytest.approx(n, abs=1e-9)
    if n:
        ordered = sorted(values)
        # Rank at the max is exact; interior ranks within a loose bound.
        assert sketch.rank(ordered[-1]) == pytest.approx(n)
        mid = ordered[n // 2]
        true_rank = sum(1 for v in values if v <= mid)
        assert abs(sketch.rank(mid) - true_rank) <= max(4.0, 4 * n / budget)
