"""Tests for the wavelet synopsis (queries, merging, thresholding)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.wavelet.synopsis import WaveletBuilder, WaveletSynopsis
from repro.types import Domain

DOMAIN = Domain(0, 63)


def _build(values, budget=64, domain=DOMAIN):
    builder = WaveletBuilder(domain, budget)
    for value in sorted(values):
        builder.add(value)
    return builder.build()


class TestPrefixReconstruction:
    def test_prefix_values(self):
        synopsis = _build([0, 2, 2, 5], domain=Domain(0, 7), budget=8)
        expected = [1, 1, 3, 3, 3, 4, 4, 4]
        got = [synopsis.prefix_value(p) for p in range(8)]
        assert got == pytest.approx(expected)

    def test_prefix_before_domain_is_zero(self):
        synopsis = _build([1, 2], domain=Domain(0, 7), budget=8)
        assert synopsis.prefix_value(-1) == 0.0
        assert synopsis.prefix_value(-100) == 0.0

    def test_prefix_clamps_past_end(self):
        synopsis = _build([1, 2], domain=Domain(0, 7), budget=8)
        assert synopsis.prefix_value(100) == pytest.approx(2.0)


class TestEstimate:
    def test_exact_with_full_budget(self):
        values = [3, 3, 10, 20, 20, 20, 50]
        synopsis = _build(values)
        assert synopsis.estimate(0, 63) == pytest.approx(7)
        assert synopsis.estimate(3, 3) == pytest.approx(2)
        assert synopsis.estimate(11, 49) == pytest.approx(3)
        assert synopsis.estimate(21, 63) == pytest.approx(1)

    def test_padded_domain(self):
        # Domain of length 100 pads to 128; queries near hi still work.
        domain = Domain(0, 99)
        synopsis = _build([95, 99], budget=128, domain=domain)
        assert synopsis.estimate(90, 99) == pytest.approx(2)
        assert synopsis.estimate(96, 99) == pytest.approx(1)

    def test_never_negative(self):
        synopsis = _build(range(0, 64, 3), budget=4)  # heavy thresholding
        for lo in range(0, 64, 7):
            assert synopsis.estimate(lo, lo + 3) >= 0.0

    def test_nonzero_domain_offset(self):
        domain = Domain(1000, 1063)
        synopsis = _build([1005, 1005, 1050], budget=64, domain=domain)
        assert synopsis.estimate(1005, 1005) == pytest.approx(2)
        assert synopsis.estimate(1006, 1063) == pytest.approx(1)


class TestThresholding:
    def test_budget_enforced(self):
        synopsis = _build(range(64), budget=8)
        assert synopsis.element_count <= 8

    def test_constructor_validates_budget(self):
        with pytest.raises(SynopsisError):
            WaveletSynopsis(DOMAIN, 2, {0: 1.0, 1: 1.0, 2: 1.0}, 3)

    def test_small_budget_keeps_total_roughly(self):
        # The overall average has the largest normalized weight, so even
        # budget 1 preserves the full-domain estimate approximately.
        values = list(range(0, 64, 2))
        synopsis = _build(values, budget=1)
        assert synopsis.estimate(0, 63) == pytest.approx(len(values), rel=0.5)


class TestMerge:
    def test_merge_exact_when_budget_allows(self):
        a = _build([1, 5, 9])
        b = _build([5, 20])
        merged = a.merge_with(b)
        assert merged.estimate(5, 5) == pytest.approx(2)
        assert merged.estimate(0, 63) == pytest.approx(5)

    def test_merge_equals_sum_of_estimates_without_thresholding(self):
        a = _build(range(0, 64, 4))
        b = _build(range(1, 64, 8))
        merged = a.merge_with(b)
        for lo, hi in [(0, 63), (5, 30), (17, 17), (60, 63)]:
            assert merged.estimate(lo, hi) == pytest.approx(
                a.estimate(lo, hi) + b.estimate(lo, hi), abs=1e-6
            )

    def test_merge_cancellation_drops_zero_coefficients(self):
        a = WaveletSynopsis(DOMAIN, 8, {0: 1.0, 5: 2.0}, 10)
        b = WaveletSynopsis(DOMAIN, 8, {0: 1.0, 5: -2.0}, 10)
        merged = a.merge_with(b)
        assert 5 not in merged.coefficients
        assert merged.coefficients[0] == pytest.approx(2.0)

    def test_merge_rethresholds_to_budget(self):
        a = _build(range(0, 64, 2), budget=6)
        b = _build(range(1, 64, 2), budget=6)
        merged = a.merge_with(b)
        assert merged.element_count <= 6


class TestPayload:
    def test_roundtrip_preserves_coefficients(self):
        synopsis = _build([1, 4, 4, 9, 33], budget=16)
        clone = WaveletSynopsis.from_payload(synopsis.to_payload())
        assert clone.coefficients == synopsis.coefficients
        assert clone.total_count == synopsis.total_count

    def test_payload_is_preordered(self):
        from repro.synopses.wavelet.coefficient import preorder_sort_key

        synopsis = _build(range(0, 64, 5), budget=16)
        indices = [i for i, _v in synopsis.to_payload()["coefficients"]]
        assert indices == sorted(indices, key=preorder_sort_key)


@settings(max_examples=50)
@given(
    st.lists(st.integers(0, 63), max_size=80),
    st.integers(0, 63),
    st.integers(0, 63),
)
def test_full_budget_estimates_are_exact(values, a, b):
    """With an unthresholded budget the synopsis is lossless."""
    lo, hi = min(a, b), max(a, b)
    synopsis = _build(values, budget=64)
    true_count = sum(1 for v in values if lo <= v <= hi)
    assert synopsis.estimate(lo, hi) == pytest.approx(true_count, abs=1e-6)


@settings(max_examples=30)
@given(
    st.lists(st.integers(0, 63), max_size=60),
    st.lists(st.integers(0, 63), max_size=60),
)
def test_merge_matches_union_build(values_a, values_b):
    """Merging unthresholded synopses equals building over the union."""
    a = _build(values_a, budget=64)
    b = _build(values_b, budget=64)
    merged = a.merge_with(b)
    union = _build(values_a + values_b, budget=64)
    for lo, hi in [(0, 63), (10, 20), (32, 63), (5, 5)]:
        assert merged.estimate(lo, hi) == pytest.approx(
            union.estimate(lo, hi), abs=1e-6
        )
