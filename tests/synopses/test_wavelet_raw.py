"""Tests for the raw-frequency wavelet (prefix-sum ablation baseline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.wavelet.classic import classic_decompose
from repro.synopses.wavelet.coefficient import support_interval
from repro.synopses.wavelet.raw import (
    RawFrequencyWaveletBuilder,
    RawFrequencyWaveletSynopsis,
)
from repro.synopses.wavelet.streaming import StreamingWaveletTransform
from repro.types import Domain

DOMAIN = Domain(0, 63)


def _build(values, budget=64, domain=DOMAIN):
    builder = RawFrequencyWaveletBuilder(domain, budget)
    for value in sorted(values):
        builder.add(value)
    return builder.build()


class TestSupportInterval:
    def test_root_nodes(self):
        assert support_interval(0, 3) == (0, 8)
        assert support_interval(1, 3) == (0, 8)

    def test_interior(self):
        assert support_interval(2, 3) == (0, 4)
        assert support_interval(3, 3) == (4, 8)
        assert support_interval(4, 3) == (0, 2)
        assert support_interval(7, 3) == (6, 8)


class TestRawTransformMode:
    def test_equals_classic_on_raw_signal(self):
        transform = StreamingWaveletTransform(3, encode_prefix_sum=False)
        tuples = [(1, 4.0), (5, 2.0)]
        for position, frequency in tuples:
            transform.add(position, frequency)
        got = {c.index: c.value for c in transform.finish()}
        raw_signal = [0.0] * 8
        for position, frequency in tuples:
            raw_signal[position] = frequency
        assert got == pytest.approx(classic_decompose(raw_signal))


class TestEstimates:
    def test_exact_with_full_budget(self):
        values = [3, 3, 10, 20, 20, 20, 50]
        synopsis = _build(values)
        assert synopsis.estimate(0, 63) == pytest.approx(7)
        assert synopsis.estimate(3, 3) == pytest.approx(2)
        assert synopsis.estimate(11, 49) == pytest.approx(3)

    def test_clips_to_domain(self):
        synopsis = _build([5, 5])
        assert synopsis.estimate(-100, 100) == pytest.approx(2)
        assert synopsis.estimate(70, 90) == 0.0

    def test_budget_enforced(self):
        synopsis = _build(range(0, 64, 2), budget=8)
        assert synopsis.element_count <= 8
        with pytest.raises(SynopsisError):
            RawFrequencyWaveletSynopsis(DOMAIN, 1, {0: 1.0, 1: 1.0})

    def test_rejects_unsorted(self):
        builder = RawFrequencyWaveletBuilder(DOMAIN, 8)
        builder.add(5)
        with pytest.raises(SynopsisError):
            builder.add(4)


@settings(max_examples=50)
@given(
    st.lists(st.integers(0, 63), max_size=60),
    st.integers(0, 63),
    st.integers(0, 63),
)
def test_full_budget_exact_property(values, a, b):
    lo, hi = min(a, b), max(a, b)
    synopsis = _build(values, budget=64)
    true_count = sum(1 for v in values if lo <= v <= hi)
    assert synopsis.estimate(lo, hi) == pytest.approx(true_count, abs=1e-6)
