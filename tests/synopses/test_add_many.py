"""Batched ``add_many`` must be bit-identical to per-record ``add``.

The batched ingestion hot path feeds every synopsis builder through
``add_many``; the whole point of the compatibility contract is that
batching is *purely* an optimisation: for any chunking of any input
stream, the built synopsis (payload bytes included) must equal the one
produced by per-value ``add`` calls.  This holds even for the stateful
families -- GK compression cadence and reservoir RNG draws depend on
the running count, so the overrides must preserve the exact call
sequence.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.base import SynopsisType
from repro.synopses.factory import create_builder
from repro.types import Domain

DOMAIN = Domain(0, 1023)
BUDGET = 16

ALL_TYPES = sorted(SynopsisType, key=lambda t: t.value)


def _prepare(synopsis_type: SynopsisType, values: list[int]) -> list[int]:
    """Sort the stream when the family demands sorted input."""
    if synopsis_type.requires_sorted_input:
        return sorted(values)
    return values


def _build(synopsis_type, values, chunk_sizes):
    """Build once, feeding ``values`` split into ``chunk_sizes`` runs.

    A chunk size of 1 uses plain ``add`` so the same helper produces
    the per-record reference build.
    """
    builder = create_builder(synopsis_type, DOMAIN, BUDGET, len(values))
    position = 0
    index = 0
    while position < len(values):
        size = chunk_sizes[index % len(chunk_sizes)]
        index += 1
        chunk = values[position : position + size]
        position += len(chunk)
        if size == 1:
            builder.add(chunk[0])
        else:
            builder.add_many(chunk)
    return builder.build()


@pytest.mark.parametrize("synopsis_type", ALL_TYPES, ids=lambda t: t.value)
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_add_many_bit_identical(synopsis_type, data):
    values = data.draw(
        st.lists(st.integers(DOMAIN.lo, DOMAIN.hi), min_size=0, max_size=200)
    )
    chunking = data.draw(
        st.lists(st.integers(2, 17), min_size=1, max_size=4)
    )
    stream = _prepare(synopsis_type, values)
    reference = _build(synopsis_type, stream, [1])
    batched = _build(synopsis_type, stream, chunking)
    assert batched.to_payload() == reference.to_payload(), synopsis_type


@pytest.mark.parametrize("synopsis_type", ALL_TYPES, ids=lambda t: t.value)
def test_add_many_seeded_large_stream(synopsis_type):
    rng = random.Random(1234)
    values = [rng.randint(DOMAIN.lo, DOMAIN.hi) for _ in range(5_000)]
    stream = _prepare(synopsis_type, values)
    reference = _build(synopsis_type, stream, [1])
    batched = _build(synopsis_type, stream, [512])
    ragged = _build(synopsis_type, stream, [7, 64, 1, 255])
    assert batched.to_payload() == reference.to_payload()
    assert ragged.to_payload() == reference.to_payload()


class TestAddManyContract:
    def test_empty_chunk_is_a_noop(self):
        builder = create_builder(SynopsisType.EQUI_WIDTH, DOMAIN, BUDGET, 0)
        builder.add_many([])
        builder.add_many([5])
        assert builder.build().total_count == 1

    def test_domain_violation_rejected(self):
        builder = create_builder(SynopsisType.EQUI_WIDTH, DOMAIN, BUDGET, 0)
        with pytest.raises(SynopsisError, match="outside domain"):
            builder.add_many([1, DOMAIN.hi + 1])

    def test_unsorted_chunk_rejected_for_sorted_family(self):
        builder = create_builder(SynopsisType.EQUI_WIDTH, DOMAIN, BUDGET, 0)
        with pytest.raises(SynopsisError):
            builder.add_many([5, 3])

    def test_chunk_behind_previous_value_rejected(self):
        builder = create_builder(SynopsisType.EQUI_WIDTH, DOMAIN, BUDGET, 0)
        builder.add_many([10, 20])
        with pytest.raises(SynopsisError):
            builder.add_many([19, 21])

    def test_unsorted_chunk_fine_for_order_insensitive_family(self):
        builder = create_builder(SynopsisType.GK_SKETCH, DOMAIN, BUDGET, 0)
        builder.add_many([5, 3, 900, 0])
        assert builder.build().total_count == 4

    def test_add_many_after_build_rejected(self):
        builder = create_builder(SynopsisType.EQUI_WIDTH, DOMAIN, BUDGET, 0)
        builder.build()
        with pytest.raises(SynopsisError, match="finalised"):
            builder.add_many([1])
