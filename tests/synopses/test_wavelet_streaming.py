"""Streaming transform tests: Algorithm 1 equals the classic transform."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.wavelet.classic import classic_decompose, prefix_sum_signal
from repro.synopses.wavelet.coefficient import (
    coefficient_level,
    normalized_weight,
    preorder_sort_key,
)
from repro.synopses.wavelet.streaming import StreamingWaveletTransform


def _streaming_coefficients(tuples, levels, budget=None):
    transform = StreamingWaveletTransform(levels, budget)
    for position, frequency in tuples:
        transform.add(position, frequency)
    return {c.index: c.value for c in transform.finish()}


def _classic_coefficients(tuples, levels):
    length = 1 << levels
    frequencies = [0.0] * length
    for position, frequency in tuples:
        frequencies[position] = frequency
    return classic_decompose(prefix_sum_signal(frequencies, length))


class TestPaperFigure1:
    """X = [0 0 2 0 0 0 1 0]: the gap-filling example of Figure 1."""

    TUPLES = [(2, 2.0), (6, 1.0)]

    def test_matches_classic(self):
        assert _streaming_coefficients(self.TUPLES, 3) == pytest.approx(
            _classic_coefficients(self.TUPLES, 3)
        )

    def test_overall_average(self):
        # Prefix sum [0 0 2 2 2 2 3 3] has average 14/8 = 1.75.
        coefficients = _streaming_coefficients(self.TUPLES, 3)
        assert coefficients[0] == pytest.approx(1.75)


class TestEdges:
    def test_empty_stream(self):
        assert _streaming_coefficients([], 4) == {}

    def test_single_position_at_start(self):
        assert _streaming_coefficients([(0, 5.0)], 2) == pytest.approx(
            _classic_coefficients([(0, 5.0)], 2)
        )

    def test_single_position_at_end(self):
        assert _streaming_coefficients([(3, 5.0)], 2) == pytest.approx(
            _classic_coefficients([(3, 5.0)], 2)
        )

    def test_levels_zero(self):
        assert _streaming_coefficients([(0, 7.0)], 0) == {0: 7.0}

    def test_dense_stream(self):
        tuples = [(i, float(i % 3)) for i in range(16)]
        assert _streaming_coefficients(tuples, 4) == pytest.approx(
            _classic_coefficients(tuples, 4)
        )

    def test_rejects_non_increasing_positions(self):
        transform = StreamingWaveletTransform(3)
        transform.add(4, 1.0)
        with pytest.raises(SynopsisError):
            transform.add(4, 1.0)
        with pytest.raises(SynopsisError):
            transform.add(2, 1.0)

    def test_rejects_out_of_range(self):
        transform = StreamingWaveletTransform(3)
        with pytest.raises(SynopsisError):
            transform.add(8, 1.0)
        with pytest.raises(SynopsisError):
            transform.add(-1, 1.0)

    def test_finish_is_single_use(self):
        transform = StreamingWaveletTransform(2)
        transform.finish()
        with pytest.raises(SynopsisError):
            transform.finish()
        with pytest.raises(SynopsisError):
            transform.add(0, 1.0)


class TestBudget:
    def test_keeps_heaviest_by_normalized_weight(self):
        tuples = [(i, float(i)) for i in range(8)]
        full = _streaming_coefficients(tuples, 3)
        kept = _streaming_coefficients(tuples, 3, budget=3)
        assert len(kept) == 3
        weights = {
            index: normalized_weight(index, value, 3)
            for index, value in full.items()
        }
        expected = set(sorted(weights, key=weights.get, reverse=True)[:3])
        assert set(kept) == expected

    def test_budget_larger_than_coefficients(self):
        tuples = [(3, 2.0)]
        assert _streaming_coefficients(tuples, 3, budget=100) == pytest.approx(
            _streaming_coefficients(tuples, 3)
        )


class TestCoefficientHelpers:
    def test_levels(self):
        assert coefficient_level(0, 3) == 3
        assert coefficient_level(1, 3) == 3
        assert coefficient_level(2, 3) == 2
        assert coefficient_level(3, 3) == 2
        assert coefficient_level(4, 3) == 1
        assert coefficient_level(7, 3) == 1

    def test_level_rejects_bad_index(self):
        with pytest.raises(ValueError):
            coefficient_level(-1, 3)
        with pytest.raises(ValueError):
            coefficient_level(16, 3)

    def test_preorder(self):
        indices = [0, 1, 2, 3, 4, 5, 6, 7]
        ordered = sorted(indices, key=preorder_sort_key)
        # Pre-order of the error tree: root, then left subtree, right.
        assert ordered == [0, 1, 2, 4, 5, 3, 6, 7]


@settings(max_examples=80)
@given(
    st.integers(0, 7).flatmap(
        lambda levels: st.tuples(
            st.just(levels),
            st.dictionaries(
                st.integers(0, 2**levels - 1), st.integers(1, 100), max_size=40
            ),
        )
    )
)
def test_streaming_equals_classic(case):
    """Algorithm 1 must reproduce the classic decomposition exactly."""
    levels, frequency_map = case
    tuples = sorted((p, float(f)) for p, f in frequency_map.items())
    assert _streaming_coefficients(tuples, levels) == pytest.approx(
        _classic_coefficients(tuples, levels)
    )
