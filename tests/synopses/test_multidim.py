"""Tests for the two-dimensional synopses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MergeabilityError, SynopsisError
from repro.synopses.multidim import (
    GridHistogram2DBuilder,
    GroundTruth2DBuilder,
    Synopsis2DType,
    Wavelet2DBuilder,
    create_builder_2d,
    haar_transform_dense,
    synopsis_2d_from_payload,
)
from repro.synopses.wavelet.classic import classic_decompose
from repro.types import Domain

DOMAINS = (Domain(0, 255), Domain(0, 255))
ALL_2D_TYPES = list(Synopsis2DType)


def _build(synopsis_type, pairs, budget=1024, domains=DOMAINS):
    builder = create_builder_2d(synopsis_type, domains, budget)
    for x, y in sorted(pairs):
        builder.add(x, y)
    return builder.build()


@pytest.mark.parametrize("synopsis_type", ALL_2D_TYPES)
class TestContract:
    def test_rejects_unsorted_pairs(self, synopsis_type):
        builder = create_builder_2d(synopsis_type, DOMAINS, 64)
        builder.add(5, 5)
        builder.add(5, 7)  # lexicographically later: fine
        with pytest.raises(SynopsisError):
            builder.add(5, 6)

    def test_rejects_out_of_domain(self, synopsis_type):
        builder = create_builder_2d(synopsis_type, DOMAINS, 64)
        with pytest.raises(SynopsisError):
            builder.add(300, 5)
        with pytest.raises(SynopsisError):
            builder.add(5, -1)

    def test_single_use(self, synopsis_type):
        builder = create_builder_2d(synopsis_type, DOMAINS, 64)
        builder.build()
        with pytest.raises(SynopsisError):
            builder.add(1, 1)
        with pytest.raises(SynopsisError):
            builder.build()

    def test_empty(self, synopsis_type):
        synopsis = _build(synopsis_type, [])
        assert synopsis.total_count == 0
        assert synopsis.estimate(0, 255, 0, 255) == 0.0

    def test_clipping(self, synopsis_type):
        synopsis = _build(synopsis_type, [(10, 10), (200, 200)])
        full = synopsis.estimate(0, 255, 0, 255)
        assert synopsis.estimate(-999, 999, -999, 999) == pytest.approx(full)
        assert synopsis.estimate(300, 400, 0, 255) == 0.0

    def test_payload_roundtrip(self, synopsis_type):
        synopsis = _build(synopsis_type, [(1, 2), (3, 4), (3, 4), (250, 0)])
        clone = synopsis_2d_from_payload(synopsis.to_payload())
        for rect in [(0, 255, 0, 255), (0, 10, 0, 10), (3, 3, 4, 4)]:
            assert clone.estimate(*rect) == pytest.approx(synopsis.estimate(*rect))

    def test_merge_equals_union(self, synopsis_type):
        pairs_a = [(i, (i * 7) % 256) for i in range(0, 100, 3)]
        pairs_b = [(i, (i * 11) % 256) for i in range(1, 100, 5)]
        merged = _build(synopsis_type, pairs_a).merge_with(
            _build(synopsis_type, pairs_b)
        )
        union = _build(synopsis_type, pairs_a + pairs_b)
        for rect in [(0, 255, 0, 255), (0, 50, 0, 127), (10, 20, 60, 200)]:
            assert merged.estimate(*rect) == pytest.approx(
                union.estimate(*rect), abs=1e-6
            )

    def test_merge_compatibility_checks(self, synopsis_type):
        a = _build(synopsis_type, [(1, 1)])
        small_domains = (Domain(0, 127), Domain(0, 127))
        b = _build(synopsis_type, [(1, 1)], domains=small_domains)
        with pytest.raises(MergeabilityError):
            a.merge_with(b)


class TestHaarDense:
    def test_matches_sparse_classic(self):
        rng = np.random.default_rng(0)
        for levels in (0, 1, 3, 5):
            vector = rng.integers(0, 50, size=1 << levels).astype(float)
            dense = haar_transform_dense(vector)
            sparse = classic_decompose(list(vector))
            for index, value in sparse.items():
                assert dense[index] == pytest.approx(value)
            zero_indices = set(range(1 << levels)) - set(sparse)
            assert all(dense[i] == pytest.approx(0.0) for i in zero_indices)

    def test_rejects_bad_length(self):
        with pytest.raises(SynopsisError):
            haar_transform_dense(np.array([1.0, 2.0, 3.0]))


class TestGrid:
    def test_cell_counts(self):
        synopsis = _build(Synopsis2DType.GRID, [(0, 0), (0, 0), (255, 255)], budget=16)
        # 4x4 grid of 64-wide cells.
        assert synopsis.counts[0, 0] == 2
        assert synopsis.counts[3, 3] == 1

    def test_exact_on_cell_aligned_rectangles(self):
        pairs = [(x, y) for x in range(0, 256, 8) for y in range(0, 256, 8)]
        synopsis = _build(Synopsis2DType.GRID, pairs, budget=16)
        # Quarter of the space, cell-aligned -> exact quarter of pairs.
        assert synopsis.estimate(0, 127, 0, 127) == pytest.approx(len(pairs) / 4)

    def test_fractional_overlap(self):
        synopsis = _build(Synopsis2DType.GRID, [(0, 0)] * 64, budget=16)
        # Querying a quarter (both axes halved) of the covering cell.
        estimate = synopsis.estimate(0, 31, 0, 31)
        assert estimate == pytest.approx(64 / 4)


class TestWavelet2D:
    def test_exact_at_cell_resolution_with_full_budget(self):
        pairs = [(16 * i, 16 * ((i * 3) % 16)) for i in range(16)] * 2
        synopsis = _build(Synopsis2DType.WAVELET, pairs, budget=10_000)
        truth = _build(Synopsis2DType.GROUND_TRUTH, pairs)
        # Rectangles aligned to the 4-value quantization cells (256/64).
        for rect in [(0, 255, 0, 255), (0, 127, 0, 127), (0, 127, 128, 255)]:
            assert synopsis.estimate(*rect) == pytest.approx(
                truth.estimate(*rect), abs=1e-6
            )

    def test_budget_enforced(self):
        pairs = [(i, (i * 37) % 256) for i in range(200)]
        synopsis = _build(Synopsis2DType.WAVELET, pairs, budget=32)
        assert synopsis.element_count <= 32

    def test_correlated_data_tracked(self):
        # Strong diagonal correlation: y == x.
        pairs = [(i, i) for i in range(256)]
        synopsis = _build(Synopsis2DType.WAVELET, pairs, budget=2048)
        on_diagonal = synopsis.estimate(0, 127, 0, 127)
        off_diagonal = synopsis.estimate(0, 127, 128, 255)
        assert on_diagonal > 100
        assert off_diagonal < 30


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255)), max_size=150
    )
)
def test_full_space_estimate_is_total(pairs):
    for synopsis_type in ALL_2D_TYPES:
        synopsis = _build(synopsis_type, pairs)
        assert synopsis.estimate(0, 255, 0, 255) == pytest.approx(
            len(pairs), abs=1e-6
        )
