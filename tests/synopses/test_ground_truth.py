"""Tests for the ground-truth oracle synopsis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopses.ground_truth import GroundTruthBuilder
from repro.types import Domain

DOMAIN = Domain(0, 999)


def _build(values):
    builder = GroundTruthBuilder(DOMAIN)
    for value in sorted(values):
        builder.add(value)
    return builder.build()


def test_exact_counts():
    synopsis = _build([1, 1, 1, 500, 999])
    assert synopsis.estimate(1, 1) == 3
    assert synopsis.estimate(0, 999) == 5
    assert synopsis.estimate(2, 499) == 0


def test_merge_adds_frequencies():
    a = _build([1, 2])
    b = _build([2, 3])
    merged = a.merge_with(b)
    assert merged.estimate(2, 2) == 2
    assert merged.total_count == 4


def test_payload_roundtrip():
    from repro.synopses import synopsis_from_payload

    synopsis = _build([5, 5, 700])
    clone = synopsis_from_payload(synopsis.to_payload())
    assert clone.estimate(5, 5) == 2
    assert clone.estimate(0, 999) == 3


@settings(max_examples=40)
@given(
    st.lists(st.integers(0, 999), max_size=150),
    st.integers(0, 999),
    st.integers(0, 999),
)
def test_always_exact(values, a, b):
    lo, hi = min(a, b), max(a, b)
    synopsis = _build(values)
    assert synopsis.estimate(lo, hi) == sum(1 for v in values if lo <= v <= hi)
