"""Tests for the reservoir-sample synopsis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MergeabilityError, SynopsisError
from repro.synopses.sampling import ReservoirSample, ReservoirSampleBuilder
from repro.types import Domain

DOMAIN = Domain(0, 9999)


def _build(values, budget=128, seed=0):
    builder = ReservoirSampleBuilder(DOMAIN, budget, seed=seed)
    for value in values:
        builder.add(value)
    return builder.build()


def test_small_input_kept_exactly():
    sample = _build([5, 1, 9], budget=10)
    assert sample.sample == [1, 5, 9]
    assert sample.total_count == 3
    assert sample.estimate(1, 5) == pytest.approx(2)


def test_reservoir_capped():
    sample = _build(range(10_000), budget=100)
    assert sample.element_count == 100
    assert sample.total_count == 10_000


def test_scale_up_unbiased_shape():
    rng = np.random.default_rng(3)
    values = rng.integers(0, 1000, size=20_000)
    sample = _build(list(values), budget=500)
    true_count = int(np.sum((values >= 100) & (values <= 300)))
    assert sample.estimate(100, 300) == pytest.approx(true_count, rel=0.25)


def test_deterministic_in_seed():
    values = list(range(5000))
    assert _build(values, seed=1).sample == _build(values, seed=1).sample
    assert _build(values, seed=1).sample != _build(values, seed=2).sample


def test_not_mergeable():
    a = _build([1, 2, 3])
    b = _build([4, 5, 6])
    with pytest.raises(MergeabilityError):
        a.merge_with(b)


def test_validation():
    with pytest.raises(SynopsisError):
        ReservoirSample(DOMAIN, 1, [1, 2], 2)
    with pytest.raises(SynopsisError):
        ReservoirSample(DOMAIN, 10, [1, 2], 1)


def test_payload_roundtrip():
    sample = _build(range(1000), budget=32)
    clone = ReservoirSample.from_payload(sample.to_payload())
    assert clone.sample == sample.sample
    assert clone.total_count == sample.total_count


@settings(max_examples=30)
@given(st.lists(st.integers(0, 9999), max_size=300), st.integers(1, 64))
def test_invariants_property(values, budget):
    sample = _build(values, budget=budget)
    assert sample.element_count == min(budget, len(values))
    assert sample.total_count == len(values)
    assert set(sample.sample) <= set(values)
    # Full-domain estimate equals the exact total (every sampled value
    # is in range, so the scale-up is exact).
    if values:
        assert sample.estimate(0, 9999) == pytest.approx(len(values))
