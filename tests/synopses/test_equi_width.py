"""Tests for equi-width histograms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.equi_width import EquiWidthBuilder, EquiWidthHistogram
from repro.types import Domain


def _build(values, domain=Domain(0, 99), budget=10):
    builder = EquiWidthBuilder(domain, budget)
    for value in sorted(values):
        builder.add(value)
    return builder.build()


class TestConstruction:
    def test_bucket_width_invariant(self):
        h = _build([], Domain(0, 99), 10)
        assert h.width == 10
        assert h.element_count == 10

    def test_width_rounds_up(self):
        h = _build([], Domain(0, 9), 4)  # length 10 / 4 buckets -> width 3
        assert h.width == 3
        assert h.element_count == 4  # ceil(10/3)

    def test_counts_per_bucket(self):
        h = _build([0, 5, 9, 10, 99])
        assert h.counts[0] == 3
        assert h.counts[1] == 1
        assert h.counts[9] == 1
        assert h.total_count == 5

    def test_budget_larger_than_domain(self):
        h = _build([0, 1, 2], Domain(0, 3), 100)
        assert h.width == 1
        assert h.element_count == 4

    def test_validates_bucket_count(self):
        with pytest.raises(SynopsisError):
            EquiWidthHistogram(Domain(0, 99), 10, [0] * 3)


class TestEstimate:
    def test_exact_on_full_buckets(self):
        h = _build(range(100))
        assert h.estimate(10, 19) == pytest.approx(10)
        assert h.estimate(0, 99) == pytest.approx(100)

    def test_partial_bucket_fractional(self):
        # 10 records in bucket [0, 9]; querying half the bucket
        # estimates half its count under the continuous-value assumption.
        h = _build([3] * 10)
        assert h.estimate(0, 4) == pytest.approx(5.0)
        assert h.estimate(5, 9) == pytest.approx(5.0)

    def test_point_query(self):
        h = _build([3] * 10)
        assert h.estimate(3, 3) == pytest.approx(1.0)

    def test_last_clipped_bucket_uses_true_width(self):
        # Domain [0, 9] with width 3: buckets [0-2], [3-5], [6-8], [9].
        h = _build([9, 9], Domain(0, 9), 4)
        assert h.estimate(9, 9) == pytest.approx(2.0)

    def test_negative_domain(self):
        h = _build([-50, -50, 25], Domain(-100, 99), 10)
        assert h.estimate(-60, -41) == pytest.approx(2.0)
        assert h.estimate(20, 39) == pytest.approx(1.0)


class TestMerge:
    def test_merge_adds_counts(self):
        a = _build([5, 15, 25])
        b = _build([5, 95])
        merged = a.merge_with(b)
        assert merged.counts[0] == 2
        assert merged.counts[1] == 1
        assert merged.counts[9] == 1
        assert merged.total_count == 5

    def test_merge_is_lossless_for_equi_width(self):
        # Same borders -> merged estimate equals sum of estimates.
        a = _build(range(0, 100, 3))
        b = _build(range(1, 100, 7))
        merged = a.merge_with(b)
        for lo, hi in [(0, 99), (13, 57), (90, 99)]:
            assert merged.estimate(lo, hi) == pytest.approx(
                a.estimate(lo, hi) + b.estimate(lo, hi)
            )


@settings(max_examples=40)
@given(st.lists(st.integers(0, 99), max_size=200), st.integers(1, 30))
def test_full_domain_estimate_is_total(values, budget):
    h = _build(values, budget=budget)
    assert h.estimate(0, 99) == pytest.approx(len(values))


@settings(max_examples=40)
@given(
    st.lists(st.integers(0, 99), max_size=100),
    st.integers(0, 99),
    st.integers(0, 99),
)
def test_estimate_bounded_by_total(values, a, b):
    lo, hi = min(a, b), max(a, b)
    h = _build(values)
    estimate = h.estimate(lo, hi)
    assert 0.0 <= estimate <= len(values) + 1e-9


@settings(max_examples=40)
@given(st.lists(st.integers(0, 99), max_size=100), st.integers(0, 98))
def test_estimate_additive_over_split(values, split):
    """Histogram estimates are additive over adjacent ranges."""
    h = _build(values)
    whole = h.estimate(0, 99)
    parts = h.estimate(0, split) + h.estimate(split + 1, 99)
    assert parts == pytest.approx(whole)
