"""Tests for the classic Haar decomposition, pinned to Appendix B."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopses.wavelet.classic import (
    classic_decompose,
    classic_reconstruct,
    prefix_sum_signal,
)


class TestAppendixBExample:
    """The paper's worked example: F = [1 0 1 0 0 2 1 4] over M = 8."""

    FREQUENCIES = [1, 0, 1, 0, 0, 2, 1, 4]

    def test_prefix_sum(self):
        assert prefix_sum_signal(self.FREQUENCIES, 8) == [1, 1, 2, 2, 2, 4, 5, 9]

    def test_coefficients_match_figure_11(self):
        coefficients = classic_decompose([1, 1, 2, 2, 2, 4, 5, 9])
        assert coefficients[0] == pytest.approx(3.25)  # overall average
        assert coefficients[1] == pytest.approx(1.75)  # top detail
        assert coefficients[2] == pytest.approx(0.5)
        assert coefficients[3] == pytest.approx(2.0)
        # Level-1 details [0 0 1 2]; zeros are not materialised.
        assert 4 not in coefficients
        assert 5 not in coefficients
        assert coefficients[6] == pytest.approx(1.0)
        assert coefficients[7] == pytest.approx(2.0)

    def test_reconstruction_is_lossless(self):
        signal = [1.0, 1, 2, 2, 2, 4, 5, 9]
        assert classic_reconstruct(classic_decompose(signal), 8) == pytest.approx(
            signal
        )


class TestEdges:
    def test_length_one(self):
        assert classic_decompose([5.0]) == {0: 5.0}
        assert classic_reconstruct({0: 5.0}, 1) == [5.0]

    def test_all_zero_signal(self):
        assert classic_decompose([0.0, 0.0, 0.0, 0.0]) == {}

    def test_constant_signal_single_coefficient(self):
        assert classic_decompose([3.0] * 8) == {0: 3.0}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            classic_decompose([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            classic_decompose([])

    def test_prefix_sum_pads_tail(self):
        assert prefix_sum_signal([2, 3], 8) == [2, 5, 5, 5, 5, 5, 5, 5]

    def test_prefix_sum_rejects_overflow(self):
        with pytest.raises(ValueError):
            prefix_sum_signal([1] * 5, 4)


@settings(max_examples=60)
@given(st.integers(0, 6).flatmap(
    lambda levels: st.lists(
        st.floats(-100, 100, allow_nan=False),
        min_size=2**levels,
        max_size=2**levels,
    )
))
def test_roundtrip_property(signal):
    reconstructed = classic_reconstruct(classic_decompose(signal), len(signal))
    assert reconstructed == pytest.approx(signal, abs=1e-6)


@settings(max_examples=40)
@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=16),
)
def test_prefix_sum_monotone(frequencies):
    signal = prefix_sum_signal(frequencies, 16)
    assert all(b >= a for a, b in zip(signal, signal[1:]))
    assert signal[-1] == sum(frequencies)
