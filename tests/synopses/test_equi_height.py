"""Tests for equi-height histograms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynopsisError
from repro.synopses.equi_height import EquiHeightBuilder, EquiHeightHistogram
from repro.types import Domain

DOMAIN = Domain(0, 999)


def _build(values, budget=10, domain=DOMAIN, expected=None):
    values = sorted(values)
    expected = len(values) if expected is None else expected
    builder = EquiHeightBuilder(domain, budget, expected)
    for value in values:
        builder.add(value)
    return builder.build()


class TestConstruction:
    def test_even_split(self):
        h = _build(range(100), budget=10)
        assert h.element_count == 10
        assert all(count == 10 for count in h.counts)
        assert h.borders == [9, 19, 29, 39, 49, 59, 69, 79, 89, 99]

    def test_borders_strictly_increasing(self):
        h = _build([5] * 50 + list(range(10, 60)), budget=10)
        assert h.borders == sorted(set(h.borders))

    def test_duplicates_stay_in_one_bucket(self):
        # 30 copies of value 7 with height 10: the run must not straddle
        # a border, so all 30 land in the bucket ending at 7.
        h = _build([7] * 30 + [100, 200, 300], budget=3)
        assert h.borders[0] == 7
        assert h.counts[0] == 30

    def test_adapts_to_clustered_values(self):
        # All data in [500, 520]: bucket 0 starts just below the data,
        # not at the domain edge, so the empty prefix contributes 0.
        h = _build(range(500, 521), budget=4)
        assert h.first_left == 499
        assert h.estimate(0, 499) == 0.0

    def test_negative_expected_records(self):
        with pytest.raises(SynopsisError):
            EquiHeightBuilder(DOMAIN, 4, -1)

    def test_validates_borders(self):
        with pytest.raises(SynopsisError):
            EquiHeightHistogram(DOMAIN, 4, 0, [5, 5], [1, 1])
        with pytest.raises(SynopsisError):
            EquiHeightHistogram(DOMAIN, 4, 0, [5], [1, 2])
        with pytest.raises(SynopsisError):
            EquiHeightHistogram(DOMAIN, 1, 0, [5, 6], [1, 1])

    def test_overflow_absorbed_by_last_bucket(self):
        # Expected count lower than actual: the final bucket absorbs the
        # tail instead of blowing the budget.
        h = _build(range(100), budget=4, expected=40)
        assert h.element_count <= 4
        assert h.total_count == 100


class TestEstimate:
    def test_uniform_data_exact_on_borders(self):
        h = _build(range(100), budget=10)
        assert h.estimate(0, 9) == pytest.approx(10)
        assert h.estimate(0, 99) == pytest.approx(100)

    def test_fractional_overlap(self):
        h = _build(range(100), budget=10)
        # Half of bucket (9, 19] -> 5 of its 10 records.
        assert h.estimate(10, 14) == pytest.approx(5.0)

    def test_skewed_data(self):
        values = [1] * 90 + list(range(100, 110))
        h = _build(values, budget=10)
        assert h.estimate(0, 5) == pytest.approx(90, rel=0.2)

    def test_empty(self):
        h = _build([])
        assert h.estimate(0, 999) == 0.0


@settings(max_examples=40)
@given(st.lists(st.integers(0, 999), max_size=300), st.integers(1, 40))
def test_full_domain_estimate_is_total(values, budget):
    h = _build(values, budget=budget)
    assert h.estimate(0, 999) == pytest.approx(len(values))


@settings(max_examples=40)
@given(st.lists(st.integers(0, 999), max_size=200), st.integers(0, 998))
def test_estimate_additive_over_split(values, split):
    h = _build(values)
    whole = h.estimate(0, 999)
    parts = h.estimate(0, split) + h.estimate(split + 1, 999)
    assert parts == pytest.approx(whole)


@settings(max_examples=40)
@given(st.lists(st.integers(0, 999), min_size=1, max_size=200), st.integers(1, 20))
def test_bucket_structure_invariants(values, budget):
    h = _build(values, budget=budget)
    assert 1 <= h.element_count <= budget
    assert h.total_count == len(values)
    previous = h.first_left
    for border in h.borders:
        assert border > previous
        previous = border
    assert h.borders[-1] == max(values)
