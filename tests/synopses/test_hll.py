"""The HLL sketch battery (docs/SKETCHES.md).

Four contracts, property-tested:

1. **Union algebra** -- register union is commutative, associative and
   idempotent, and ``merge(build(A), build(B))`` is *bit-identical* to
   ``build(A ∪ B)``: the lazy master-side union loses nothing.
2. **HBS codec** -- ``decode(encode(registers))`` round-trips
   bit-identically for arbitrary register vectors, including the
   all-zero and saturated uniform frames.
3. **Accuracy** -- relative NDV error stays within three standard
   errors (``3 * 1.04 / sqrt(2**p)``) over seeded random cardinalities
   from 10 up to 10**6 (the full sweep runs in the nightly lane via
   ``REPRO_HLL_FULL=1``; the quick lane subsamples).
4. **Columnar oracle** -- batched ``add_many`` over typed key columns
   is register-identical to the per-record ``add`` oracle across chunk
   sizes and both ``REPRO_COLUMNAR_NUMPY`` states.
"""

import os
import random
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MergeabilityError, SynopsisError
from repro.synopses.hll import (
    HBSCodec,
    HyperLogLogBuilder,
    HyperLogLogSynopsis,
    hash64,
)
from repro.types import Domain

DOMAIN = Domain(0, 2**20 - 1)
BUDGET = 256  # p = 8

FULL_SCALE = os.environ.get("REPRO_HLL_FULL") == "1"

values_lists = st.lists(
    st.integers(DOMAIN.lo, DOMAIN.hi), min_size=0, max_size=300
)


def _build(values, budget=BUDGET, domain=DOMAIN):
    builder = HyperLogLogBuilder(domain, budget)
    for value in values:
        builder.add(value)
    return builder.build()


def _registers(sketch: HyperLogLogSynopsis) -> bytes:
    return bytes(sketch.registers)


class TestUnionAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(values_lists, values_lists)
    def test_union_equals_build_of_union(self, a, b):
        """The load-bearing property: lazily unioned per-component
        sketches are bit-identical to one sketch over all the data."""
        merged = _build(a).merge_with(_build(b))
        combined = _build(a + b)
        assert _registers(merged) == _registers(combined)
        assert merged.to_payload()["hbs"] == combined.to_payload()["hbs"]

    @settings(max_examples=60, deadline=None)
    @given(values_lists, values_lists)
    def test_commutative(self, a, b):
        x, y = _build(a), _build(b)
        assert _registers(x.merge_with(y)) == _registers(y.merge_with(x))

    @settings(max_examples=40, deadline=None)
    @given(values_lists, values_lists, values_lists)
    def test_associative(self, a, b, c):
        x, y, z = _build(a), _build(b), _build(c)
        left = x.merge_with(y).merge_with(z)
        right = x.merge_with(y.merge_with(z))
        assert _registers(left) == _registers(right)

    @settings(max_examples=60, deadline=None)
    @given(values_lists)
    def test_idempotent(self, a):
        x = _build(a)
        assert _registers(x.merge_with(x)) == _registers(x)

    def test_merge_rejects_seed_mismatch(self):
        x = _build(range(10))
        other = HyperLogLogSynopsis(
            DOMAIN, BUDGET, x.registers, 10, hash_seed=x.hash_seed + 1
        )
        with pytest.raises(MergeabilityError):
            x.merge_with(other)

    def test_merge_rejects_budget_mismatch(self):
        with pytest.raises(MergeabilityError):
            _build(range(10), budget=128).merge_with(_build(range(10)))


class TestHBSCodec:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 9).flatmap(
            lambda p: st.lists(
                st.integers(0, 57), min_size=2**p, max_size=2**p
            )
        )
    )
    def test_round_trip(self, regs):
        registers = array("B", regs)
        encoded = HBSCodec.encode(registers)
        assert HBSCodec.decode(encoded) == registers

    def test_all_zero_uses_uniform_frame(self):
        registers = array("B", bytes(1024))
        encoded = HBSCodec.encode(registers)
        assert len(encoded) == 6  # >BIB header only
        assert HBSCodec.decode(encoded) == registers

    def test_saturated_uniform(self):
        registers = array("B", [57] * 256)
        encoded = HBSCodec.encode(registers)
        assert len(encoded) == 6
        assert HBSCodec.decode(encoded) == registers

    def test_payload_round_trip_bit_identical(self):
        sketch = _build(random.Random(3).sample(range(2**20), 5000))
        clone = HyperLogLogSynopsis.from_payload(sketch.to_payload())
        assert _registers(clone) == _registers(sketch)
        assert clone.to_payload() == sketch.to_payload()

    def test_encoding_is_deterministic(self):
        """Equal registers -> equal bytes (catalog dedup relies on it)."""
        a = _build(range(0, 4000, 3))
        b = _build(list(range(0, 4000, 3))[::-1])
        assert a.to_payload()["hbs"] == b.to_payload()["hbs"]

    def test_compresses_realistic_registers(self):
        sketch = _build(random.Random(9).sample(range(2**20), 20_000), 1024)
        assert sketch.encoded_bytes() < sketch.register_bytes()


class TestAccuracy:
    @pytest.mark.parametrize("precision", [8, 10, 12])
    def test_relative_error_within_three_sigma(self, precision):
        m = 1 << precision
        allowance = 3 * 1.04 / m**0.5
        rng = random.Random(precision)
        ceiling = 6 if FULL_SCALE else 5
        cardinalities = [10] + [
            rng.randint(10**e, 10 ** (e + 1)) for e in range(1, ceiling)
        ]
        domain = Domain(0, 2**62 - 1)
        for n in cardinalities:
            builder = HyperLogLogBuilder(domain, m)
            builder.add_many(
                array("q", rng.sample(range(2**62 - 1), n))
            )
            estimate = builder.build().cardinality()
            assert abs(estimate - n) / n <= allowance, (
                f"p={precision} n={n} est={estimate}"
            )

    def test_empty_is_zero(self):
        sketch = _build([])
        assert sketch.cardinality() == 0.0
        assert sketch.estimate(DOMAIN.lo, DOMAIN.hi) == 0.0

    def test_duplicates_do_not_inflate(self):
        sketch = _build([42] * 10_000 + [7] * 5_000)
        assert sketch.cardinality() == pytest.approx(2, abs=1)

    def test_range_estimate_scales_with_overlap(self):
        sketch = _build(range(0, 1000))
        full = sketch.estimate(DOMAIN.lo, DOMAIN.hi)
        assert sketch.estimate(5, 4) == 0.0
        assert 0.0 <= sketch.estimate(0, DOMAIN.hi // 2) <= full

    def test_rejects_bad_budgets(self):
        for bad in (3, 6, 100):
            with pytest.raises(SynopsisError):
                HyperLogLogBuilder(DOMAIN, bad)

    def test_hash_is_seeded(self):
        assert hash64(12345, 1) != hash64(12345, 2)


class TestColumnarOracle:
    @pytest.mark.parametrize("numpy_on", [False, True], ids=["py", "np"])
    @pytest.mark.parametrize("chunk_sizes", [[1], [7], [64], [1, 33, 256]])
    def test_add_many_matches_per_record_oracle(self, numpy_on, chunk_sizes):
        from repro.util.npbackend import numpy_backend

        rng = random.Random(11)
        values = [rng.randrange(DOMAIN.lo, DOMAIN.hi + 1) for _ in range(900)]

        oracle = HyperLogLogBuilder(DOMAIN, BUDGET)
        for value in values:
            oracle.add(value)

        with numpy_backend(numpy_on):
            batched = HyperLogLogBuilder(DOMAIN, BUDGET)
            position = 0
            index = 0
            while position < len(values):
                size = chunk_sizes[index % len(chunk_sizes)]
                index += 1
                chunk = array("q", values[position : position + size])
                position += len(chunk)
                batched.add_many(chunk)
            batched_sketch = batched.build()

        oracle_sketch = oracle.build()
        assert _registers(batched_sketch) == _registers(oracle_sketch)
        assert batched_sketch.to_payload() == oracle_sketch.to_payload()
        assert batched_sketch.total_count == oracle_sketch.total_count

    @pytest.mark.parametrize("numpy_on", [False, True], ids=["py", "np"])
    def test_list_and_typed_column_agree(self, numpy_on):
        from repro.util.npbackend import numpy_backend

        values = list(range(0, 5000, 7))
        with numpy_backend(numpy_on):
            from_list = HyperLogLogBuilder(DOMAIN, BUDGET)
            from_list.add_many(values)
            from_column = HyperLogLogBuilder(DOMAIN, BUDGET)
            from_column.add_many(array("q", values))
        assert _registers(from_list.build()) == _registers(from_column.build())
